#include "systems/video_source.h"

#include <algorithm>
#include <thread>

#include "storage/vss.h"

namespace visualroad::systems {

VideoSource::VideoSource(const video::codec::EncodedVideo* stream, bool offline,
                         double rate_multiplier)
    : stream_(stream), offline_(offline), rate_multiplier_(rate_multiplier) {}

VideoSource VideoSource::Offline(const video::codec::EncodedVideo* stream) {
  return VideoSource(stream, /*offline=*/true, 0.0);
}

VideoSource VideoSource::Online(const video::codec::EncodedVideo* stream,
                                double rate_multiplier) {
  return VideoSource(stream, /*offline=*/false,
                     rate_multiplier > 0 ? rate_multiplier : 1.0);
}

StatusOr<VideoSource> VideoSource::StorageOffline(
    storage::VideoStorageService* vss, const std::string& name,
    int readahead_frames) {
  if (vss == nullptr) {
    return Status::InvalidArgument("storage source needs a service");
  }
  VR_ASSIGN_OR_RETURN(storage::CatalogEntry entry, vss->Describe(name));
  VideoSource source(nullptr, /*offline=*/true, 0.0);
  source.vss_ = vss;
  source.name_ = name;
  source.readahead_frames_ = std::max(1, readahead_frames);
  source.frame_count_ = entry.frame_count;
  return source;
}

int VideoSource::FrameCount() const {
  return stream_ != nullptr ? stream_->FrameCount() : frame_count_;
}

Status VideoSource::FillWindow() {
  if (window_ != nullptr && position_ >= window_first_ &&
      position_ < window_first_ + window_->FrameCount()) {
    return Status::Ok();
  }
  VR_ASSIGN_OR_RETURN(storage::VariantKey tier, vss_->BaseTier(name_));
  int count = std::min(readahead_frames_, frame_count_ - position_);
  VR_ASSIGN_OR_RETURN(storage::RangeRead range,
                      vss_->ReadRange(name_, tier, position_, count));
  window_ = std::move(range.video);
  window_first_ = range.first_frame;
  return Status::Ok();
}

StatusOr<const video::codec::EncodedFrame*> VideoSource::Next() {
  if (AtEnd()) return Status::OutOfRange("video source exhausted");
  if (!offline_) {
    if (!started_) {
      // Anchor pacing at the first read, not at construction.
      started_ = true;
      start_ = std::chrono::steady_clock::now();
    }
    // Throttle: frame i becomes available at start + i / (fps * multiplier).
    double seconds = position_ / (stream_->fps * rate_multiplier_);
    auto available_at =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    std::this_thread::sleep_until(available_at);
  }
  if (vss_ != nullptr) {
    VR_RETURN_IF_ERROR(FillWindow());
    return &window_->frames[static_cast<size_t>(position_++ - window_first_)];
  }
  return &stream_->frames[static_cast<size_t>(position_++)];
}

Status VideoSource::Seek(int frame_index) {
  if (!offline_) {
    return Status::FailedPrecondition("online sources are forward-only");
  }
  if (frame_index < 0 || frame_index > FrameCount()) {
    return Status::OutOfRange("seek outside the stream");
  }
  position_ = frame_index;
  // Reset position-dependent state: a window that no longer covers the new
  // position would serve frames of the wrong index.
  if (window_ != nullptr &&
      (position_ < window_first_ ||
       position_ >= window_first_ + window_->FrameCount())) {
    window_.reset();
    window_first_ = 0;
  }
  return Status::Ok();
}

}  // namespace visualroad::systems
