#include "systems/video_source.h"

#include <thread>

namespace visualroad::systems {

VideoSource::VideoSource(const video::codec::EncodedVideo* stream, bool offline,
                         double rate_multiplier)
    : stream_(stream),
      offline_(offline),
      rate_multiplier_(rate_multiplier),
      start_(std::chrono::steady_clock::now()) {}

VideoSource VideoSource::Offline(const video::codec::EncodedVideo* stream) {
  return VideoSource(stream, /*offline=*/true, 0.0);
}

VideoSource VideoSource::Online(const video::codec::EncodedVideo* stream,
                                double rate_multiplier) {
  return VideoSource(stream, /*offline=*/false,
                     rate_multiplier > 0 ? rate_multiplier : 1.0);
}

StatusOr<const video::codec::EncodedFrame*> VideoSource::Next() {
  if (AtEnd()) return Status::OutOfRange("video source exhausted");
  if (!offline_) {
    // Throttle: frame i becomes available at start + i / (fps * multiplier).
    double seconds = position_ / (stream_->fps * rate_multiplier_);
    auto available_at =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    std::this_thread::sleep_until(available_at);
  }
  return &stream_->frames[static_cast<size_t>(position_++)];
}

Status VideoSource::Seek(int frame_index) {
  if (!offline_) {
    return Status::FailedPrecondition("online sources are forward-only");
  }
  if (frame_index < 0 || frame_index > stream_->FrameCount()) {
    return Status::OutOfRange("seek outside the stream");
  }
  position_ = frame_index;
  return Status::Ok();
}

}  // namespace visualroad::systems
