#ifndef VISUALROAD_SYSTEMS_VIDEO_SOURCE_H_
#define VISUALROAD_SYSTEMS_VIDEO_SOURCE_H_

#include <chrono>

#include "common/status.h"
#include "video/codec/codec.h"

namespace visualroad::systems {

/// How the VCD exposes an input video to a VDBMS (Section 3.2).
///
/// Offline sources wrap a file with random access (`SeekSupported()` true);
/// online sources are forward-only iterators throttled to the camera's
/// capture rate — reads ahead of real time block, exactly as a named pipe or
/// RTP feed would. `rate_multiplier` scales simulated real time (1.0 = the
/// camera's own rate; larger = faster-than-real-time for tests).
class VideoSource {
 public:
  static VideoSource Offline(const video::codec::EncodedVideo* stream);
  static VideoSource Online(const video::codec::EncodedVideo* stream,
                            double rate_multiplier = 1.0);

  /// Next encoded frame in capture order; blocks in online mode until the
  /// frame's capture timestamp has elapsed. OutOfRange past the end.
  StatusOr<const video::codec::EncodedFrame*> Next();

  bool AtEnd() const { return position_ >= stream_->FrameCount(); }
  bool SeekSupported() const { return offline_; }

  /// Random access (offline only): repositions the iterator.
  Status Seek(int frame_index);

  const video::codec::EncodedVideo& stream() const { return *stream_; }
  int position() const { return position_; }

 private:
  VideoSource(const video::codec::EncodedVideo* stream, bool offline,
              double rate_multiplier);

  const video::codec::EncodedVideo* stream_;
  bool offline_;
  double rate_multiplier_;
  int position_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace visualroad::systems

#endif  // VISUALROAD_SYSTEMS_VIDEO_SOURCE_H_
