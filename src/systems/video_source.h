#ifndef VISUALROAD_SYSTEMS_VIDEO_SOURCE_H_
#define VISUALROAD_SYSTEMS_VIDEO_SOURCE_H_

#include <chrono>
#include <memory>
#include <string>

#include "common/fault.h"
#include "common/status.h"
#include "video/codec/codec.h"

namespace visualroad::storage {
class VideoStorageService;
struct VariantKey;
}  // namespace visualroad::storage

namespace visualroad::systems {

/// How the VCD exposes an input video to a VDBMS (Section 3.2).
///
/// Offline sources wrap a file with random access (`SeekSupported()` true);
/// online sources are forward-only iterators throttled to the camera's
/// capture rate — reads ahead of real time block, exactly as a named pipe or
/// RTP feed would. `rate_multiplier` scales simulated real time (1.0 = the
/// camera's own rate; larger = faster-than-real-time for tests). Storage
/// offline sources read from the storage service in GOP-aligned windows
/// instead of holding the whole file.
class VideoSource {
 public:
  static VideoSource Offline(const video::codec::EncodedVideo* stream);
  /// `faults` (optional, borrowed) injects channel behavior into the feed:
  /// kRtpLoss replaces a frame with a repeat of the last delivered one
  /// (freeze-frame, counted in frames_degraded()), kRtpJitter delays a
  /// delivery. Null means a clean channel.
  static VideoSource Online(const video::codec::EncodedVideo* stream,
                            double rate_multiplier = 1.0,
                            fault::FaultInjector* faults = nullptr);
  /// Storage-backed offline source for logical video `name` at its base
  /// tier: frames are fetched on demand as GOP-aligned range reads of about
  /// `readahead_frames` frames, so a seek-and-read touches only the
  /// covering segments. `vss` is borrowed and must outlive the source.
  static StatusOr<VideoSource> StorageOffline(
      storage::VideoStorageService* vss, const std::string& name,
      int readahead_frames = 64);

  /// Next encoded frame in capture order; blocks in online mode until the
  /// frame's capture timestamp has elapsed. OutOfRange past the end. The
  /// returned frame stays valid until the next Next() or Seek() call.
  StatusOr<const video::codec::EncodedFrame*> Next();

  bool AtEnd() const { return position_ >= FrameCount(); }
  bool SeekSupported() const { return offline_; }

  /// Random access (offline only): repositions the iterator and resets all
  /// position-dependent state (a storage-backed source drops its fetched
  /// window when the target lies outside it).
  Status Seek(int frame_index);

  /// The whole backing bitstream; only valid for stream-backed sources
  /// (storage-backed sources never hold the whole file).
  const video::codec::EncodedVideo& stream() const { return *stream_; }
  int position() const { return position_; }
  int FrameCount() const;
  /// Frames delivered as freeze-frame repeats because the channel lost the
  /// real one (online mode with faults attached; always 0 otherwise).
  int frames_degraded() const { return frames_degraded_; }

 private:
  VideoSource(const video::codec::EncodedVideo* stream, bool offline,
              double rate_multiplier);

  /// Ensures the fetched window covers position_ (storage mode only).
  Status FillWindow();

  const video::codec::EncodedVideo* stream_;
  bool offline_;
  double rate_multiplier_;
  int position_ = 0;
  /// Online pacing anchor, established at the first Next() call so a source
  /// constructed ahead of consumption does not release an instant backlog.
  /// After a stall longer than a few frame periods the anchor slides
  /// forward, capping catch-up (see Next()).
  bool started_ = false;
  std::chrono::steady_clock::time_point start_;
  fault::FaultInjector* faults_ = nullptr;
  const video::codec::EncodedFrame* last_delivered_ = nullptr;
  int frames_degraded_ = 0;

  // Storage-backed mode.
  storage::VideoStorageService* vss_ = nullptr;
  std::string name_;
  int readahead_frames_ = 64;
  int frame_count_ = 0;
  std::shared_ptr<const video::codec::EncodedVideo> window_;
  int window_first_ = 0;
};

}  // namespace visualroad::systems

#endif  // VISUALROAD_SYSTEMS_VIDEO_SOURCE_H_
