#include "systems/vdbms.h"

#include <algorithm>
#include <filesystem>

#include "common/trace.h"
#include "storage/vss.h"
#include "video/codec/gop_cache.h"

namespace visualroad::systems::detail {

namespace {

/// Non-owning view of a container-held bitstream. The dataset outlives the
/// engine call, so an empty deleter is sound.
std::shared_ptr<const video::codec::EncodedVideo> BorrowStream(
    const video::codec::EncodedVideo& video) {
  return {&video, [](const video::codec::EncodedVideo*) {}};
}

}  // namespace

StatusOr<std::shared_ptr<const video::codec::EncodedVideo>> ResolveInput(
    const sim::VideoAsset& asset, const EngineOptions& options) {
  if (options.vss == nullptr) return BorrowStream(asset.container.video);
  const std::string name = storage::CameraStreamName(asset.camera.camera_id);
  VR_ASSIGN_OR_RETURN(storage::VariantKey tier, options.vss->BaseTier(name));
  return options.vss->ReadVideo(name, tier);
}

StatusOr<ResolvedRange> ResolveInputRange(const sim::VideoAsset& asset,
                                          const EngineOptions& options,
                                          int first, int count) {
  if (options.vss == nullptr) {
    return ResolvedRange{BorrowStream(asset.container.video), 0};
  }
  const std::string name = storage::CameraStreamName(asset.camera.camera_id);
  VR_ASSIGN_OR_RETURN(storage::VariantKey tier, options.vss->BaseTier(name));
  VR_ASSIGN_OR_RETURN(storage::RangeRead range,
                      options.vss->ReadRange(name, tier, first, count));
  return ResolvedRange{std::move(range.video), range.first_frame};
}

StatusOr<const sim::VideoAsset*> InputAsset(const queries::QueryInstance& instance,
                                            const sim::Dataset& dataset) {
  std::vector<const sim::VideoAsset*> traffic = dataset.TrafficAssets();
  if (instance.video_index < 0 ||
      static_cast<size_t>(instance.video_index) >= traffic.size()) {
    return Status::OutOfRange("query instance addresses a missing input video");
  }
  return traffic[static_cast<size_t>(instance.video_index)];
}

Status FinishVideoResult(const video::Video& result,
                         const queries::QueryInstance& instance,
                         const EngineOptions& options, OutputMode mode,
                         const std::string& output_dir, const char* engine_name,
                         QueryOutput& output, int64_t* frames_encoded) {
  if (mode == OutputMode::kStreaming) {
    // Streaming mode sends results "to the null device" (Section 6.4): the
    // output is still encoded — that work is part of the query — but the
    // bitstream is discarded instead of persisted.
    if (!result.frames.empty()) {
      TRACE_SPAN("encode_output");
      video::codec::EncoderConfig config;
      config.profile = options.output_profile;
      config.qp = options.output_qp;
      VR_ASSIGN_OR_RETURN(
          video::codec::EncodedVideo discarded,
          video::codec::ParallelEncode(result, config, options.codec_threads));
      if (frames_encoded != nullptr) *frames_encoded += result.FrameCount();
      (void)discarded;
    }
    output.produced = false;
    return Status::Ok();
  }
  if (result.frames.empty()) {
    // An empty result (e.g. a Q8 query for an unseen plate) still counts as
    // produced; there is simply nothing to persist.
    output.produced = true;
    return Status::Ok();
  }
  {
    TRACE_SPAN("encode_output");
    video::codec::EncoderConfig config;
    config.profile = options.output_profile;
    config.qp = options.output_qp;
    VR_ASSIGN_OR_RETURN(output.video, video::codec::ParallelEncode(
                                          result, config, options.codec_threads));
  }
  if (frames_encoded != nullptr) *frames_encoded += result.FrameCount();
  output.produced = true;

  if (!output_dir.empty()) {
    TRACE_SPAN("persist_output");
    std::error_code ec;
    std::filesystem::create_directories(output_dir, ec);
    std::string path = output_dir + "/" + engine_name + "_" +
                       queries::QueryName(instance.id) + "_" +
                       std::to_string(instance.video_index) + ".vrmp";
    // Sanitise the parenthesised query names for the filesystem.
    for (char& c : path) {
      if (c == '(' || c == ')') c = '_';
    }
    video::container::Container container;
    container.video = output.video;
    VR_RETURN_IF_ERROR(video::container::WriteContainerFile(container, path));
    output.written_path = path;
  }
  return Status::Ok();
}

int64_t FrameBytes(int width, int height) {
  return static_cast<int64_t>(width) * height * 3 / 2;
}

int64_t InputFrameCount(const queries::QueryInstance& instance,
                        const sim::Dataset& dataset) {
  std::vector<const sim::VideoAsset*> traffic = dataset.TrafficAssets();
  if (instance.id == queries::QueryId::kQ8) {
    // Q8 scans every traffic stream for the plate.
    int64_t frames = 0;
    for (const sim::VideoAsset* asset : traffic) {
      frames += asset->container.video.FrameCount();
    }
    return frames;
  }
  if (instance.id == queries::QueryId::kQ9 || instance.id == queries::QueryId::kQ10) {
    int64_t frames = 0;
    for (const sim::VideoAsset* face : dataset.PanoramicGroup(instance.pano_group)) {
      if (face != nullptr) frames += face->container.video.FrameCount();
    }
    return frames;
  }
  if (instance.video_index < 0 ||
      static_cast<size_t>(instance.video_index) >= traffic.size()) {
    return 0;
  }
  return traffic[static_cast<size_t>(instance.video_index)]->container.video.FrameCount();
}

namespace {

metrics::Counter& EngineCounter(const std::string& name, const std::string& help,
                                const char* engine_name) {
  return metrics::MetricsRegistry::Global().GetCounter(
      name, help, std::string("engine=\"") + engine_name + "\"");
}

}  // namespace

EngineMetricsMirror::EngineMetricsMirror(const char* engine_name)
    : queries_(EngineCounter("vr_engine_queries_total",
                             "Query instances an engine finished executing",
                             engine_name)),
      frames_decoded_(EngineCounter("vr_engine_frames_decoded_total",
                                    "Frames an engine decoded (or pulled decoded "
                                    "from the GOP cache as a miss leader)",
                                    engine_name)),
      frames_encoded_(EngineCounter("vr_engine_frames_encoded_total",
                                    "Result frames an engine encoded",
                                    engine_name)),
      cache_hits_(EngineCounter("vr_engine_cache_hits_total",
                                "Engine-level cache hits (GOP or operator cache)",
                                engine_name)),
      cache_misses_(EngineCounter("vr_engine_cache_misses_total",
                                  "Engine-level cache misses", engine_name)),
      chunked_redecodes_(EngineCounter(
          "vr_engine_chunked_redecodes_total",
          "Chunked re-decode passes forced by the materialisation budget",
          engine_name)),
      cnn_frames_full_(EngineCounter("vr_engine_cnn_frames_full_total",
                                     "Frames sent through the full detector",
                                     engine_name)),
      cnn_frames_cheap_(EngineCounter(
          "vr_engine_cnn_frames_cheap_total",
          "Frames handled by a cheap filter (cascade engines)", engine_name)),
      cnn_frames_skipped_(EngineCounter("vr_engine_cnn_frames_skipped_total",
                                        "Frames skipped entirely by a cascade",
                                        engine_name)) {}

void EngineMetricsMirror::Publish(const EngineStats& current) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Clamp at zero: counters only move forward even if an engine ever resets
  // its snapshot (e.g. in Quiesce).
  auto delta = [](int64_t now, int64_t then) {
    return static_cast<double>(std::max<int64_t>(now - then, 0));
  };
  queries_.Increment();
  frames_decoded_.Increment(delta(current.frames_decoded, last_.frames_decoded));
  frames_encoded_.Increment(delta(current.frames_encoded, last_.frames_encoded));
  cache_hits_.Increment(delta(current.cache_hits, last_.cache_hits));
  cache_misses_.Increment(delta(current.cache_misses, last_.cache_misses));
  chunked_redecodes_.Increment(
      delta(current.chunked_redecodes, last_.chunked_redecodes));
  cnn_frames_full_.Increment(delta(current.cnn_frames_full, last_.cnn_frames_full));
  cnn_frames_cheap_.Increment(
      delta(current.cnn_frames_cheap, last_.cnn_frames_cheap));
  cnn_frames_skipped_.Increment(
      delta(current.cnn_frames_skipped, last_.cnn_frames_skipped));
  last_ = current;
}

video::codec::GopCache& ResolveGopCache(const EngineOptions& options) {
  video::codec::GopCache& cache = options.gop_cache != nullptr
                                      ? *options.gop_cache
                                      : video::codec::GopCache::Global();
  if (options.gop_cache_bytes > 0) cache.set_capacity_bytes(options.gop_cache_bytes);
  return cache;
}

}  // namespace visualroad::systems::detail
