#include "systems/vdbms.h"

#include <filesystem>

#include "video/codec/gop_cache.h"

namespace visualroad::systems::detail {

StatusOr<const sim::VideoAsset*> InputAsset(const queries::QueryInstance& instance,
                                            const sim::Dataset& dataset) {
  std::vector<const sim::VideoAsset*> traffic = dataset.TrafficAssets();
  if (instance.video_index < 0 ||
      static_cast<size_t>(instance.video_index) >= traffic.size()) {
    return Status::OutOfRange("query instance addresses a missing input video");
  }
  return traffic[static_cast<size_t>(instance.video_index)];
}

Status FinishVideoResult(const video::Video& result,
                         const queries::QueryInstance& instance,
                         const EngineOptions& options, OutputMode mode,
                         const std::string& output_dir, const char* engine_name,
                         QueryOutput& output, int64_t* frames_encoded) {
  if (mode == OutputMode::kStreaming) {
    // Streaming mode sends results "to the null device" (Section 6.4): the
    // output is still encoded — that work is part of the query — but the
    // bitstream is discarded instead of persisted.
    if (!result.frames.empty()) {
      video::codec::EncoderConfig config;
      config.profile = options.output_profile;
      config.qp = options.output_qp;
      VR_ASSIGN_OR_RETURN(
          video::codec::EncodedVideo discarded,
          video::codec::ParallelEncode(result, config, options.codec_threads));
      if (frames_encoded != nullptr) *frames_encoded += result.FrameCount();
      (void)discarded;
    }
    output.produced = false;
    return Status::Ok();
  }
  if (result.frames.empty()) {
    // An empty result (e.g. a Q8 query for an unseen plate) still counts as
    // produced; there is simply nothing to persist.
    output.produced = true;
    return Status::Ok();
  }
  video::codec::EncoderConfig config;
  config.profile = options.output_profile;
  config.qp = options.output_qp;
  VR_ASSIGN_OR_RETURN(output.video, video::codec::ParallelEncode(
                                        result, config, options.codec_threads));
  if (frames_encoded != nullptr) *frames_encoded += result.FrameCount();
  output.produced = true;

  if (!output_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(output_dir, ec);
    std::string path = output_dir + "/" + engine_name + "_" +
                       queries::QueryName(instance.id) + "_" +
                       std::to_string(instance.video_index) + ".vrmp";
    // Sanitise the parenthesised query names for the filesystem.
    for (char& c : path) {
      if (c == '(' || c == ')') c = '_';
    }
    video::container::Container container;
    container.video = output.video;
    VR_RETURN_IF_ERROR(video::container::WriteContainerFile(container, path));
    output.written_path = path;
  }
  return Status::Ok();
}

int64_t FrameBytes(int width, int height) {
  return static_cast<int64_t>(width) * height * 3 / 2;
}

video::codec::GopCache& ResolveGopCache(const EngineOptions& options) {
  video::codec::GopCache& cache = options.gop_cache != nullptr
                                      ? *options.gop_cache
                                      : video::codec::GopCache::Global();
  if (options.gop_cache_bytes > 0) cache.set_capacity_bytes(options.gop_cache_bytes);
  return cache;
}

}  // namespace visualroad::systems::detail
