// PipelineEngine: the LightDB-like comparison system.
//
// Architecture (see DESIGN.md): queries execute as fused per-frame pipelines
// — decode a frame, run every operator on it, feed it straight to the output
// encoder — so nothing is materialised beyond the operator state that a
// window genuinely requires. Decoded content flows through the shared GOP
// cache (keyed by bitstream identity and GOP start), which is the mechanism
// behind the duplicate-corpus speedups of Table 9: repeated inputs skip the
// decoder entirely. Temporal selection (Q1) is pushed into the decoder via
// keyframe-aligned range decoding that fetches only the covering GOPs. Two deliberate weak spots
// mirror the paper's findings: the mean filter recomputes its window per
// frame (no materialised running sums), and the captioning path is a scalar
// per-pixel renderer ("a CPU-only implementation of the captioning query").
//
// Decoded content flows through the process-wide GOP cache shared with the
// other engines; the per-engine counters behind stats() are atomic and the
// inference memo is mutex-guarded, so Execute() is safe to call concurrently
// (ConcurrentSafe) and the VCD may fan instances out to this engine.
//
// Lines between "vr:<query>:begin/end" markers are counted by the Figure 7
// lines-of-code bench.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/trace.h"
#include "systems/vdbms.h"
#include "video/codec/gop_cache.h"
#include "video/image_ops.h"
#include "vision/background.h"
#include "vision/overlay.h"
#include "vision/tiling.h"

namespace visualroad::systems {

namespace {

using queries::QueryId;
using queries::QueryInstance;
using video::Frame;
using video::Video;

class PipelineEngine : public Vdbms {
 public:
  explicit PipelineEngine(const EngineOptions& options)
      : options_(options), gop_cache_(&detail::ResolveGopCache(options)) {
    detector_options_ = options.detector;
    detector_options_.input_size = 96;  // The fused fast path.
    detector_ = std::make_unique<vision::MiniYolo>(detector_options_);
    model_fingerprint_ = queries::ModelFingerprint(detector_options_, "miniyolo");
  }

  const char* name() const override { return "PipelineEngine"; }

  bool Supports(QueryId id) const override {
    (void)id;
    return true;
  }

  bool ConcurrentSafe() const override { return true; }

  void Quiesce() override {
    gop_cache_->Clear();
    std::lock_guard<std::mutex> lock(inference_mutex_);
    inference_cache_.clear();
  }

  EngineStats stats() const override {
    EngineStats stats;
    stats.frames_decoded = decode_counters_.frames_decoded.load() +
                           frames_decoded_extra_.load();
    stats.frames_encoded = frames_encoded_.load();
    stats.cache_hits = decode_counters_.hits.load() + inference_hits_.load();
    stats.cache_misses = decode_counters_.misses.load();
    stats.cnn_frames_full = cnn_frames_full_.load();
    return stats;
  }

  std::string Explain(const QueryInstance& instance,
                      const sim::Dataset& dataset) override {
    StatusOr<const sim::VideoAsset*> asset = detail::InputAsset(instance, dataset);
    if (!asset.ok()) return "";
    const video::codec::EncodedVideo& meta = (*asset)->container.video;
    queries::PlanContext context;
    context.meta.identity = video::codec::StreamIdentity(meta);
    context.meta.frame_count = meta.FrameCount();
    context.meta.width = meta.width;
    context.meta.height = meta.height;
    context.meta.fps = meta.fps;
    context.cache = options_.semantic_cache;
    context.key = SemanticKeyFor(meta);
    if (instance.id == QueryId::kQ2c || instance.id == QueryId::kQ7) {
      context.stages = {"miniyolo96"};
    }
    return std::string(name()) + ": " +
           queries::ExplainPlan(queries::PlanQuery(instance, context));
  }

  StatusOr<QueryOutput> Execute(const QueryInstance& instance,
                                const sim::Dataset& dataset, OutputMode mode,
                                const std::string& output_dir,
                                EngineStats* call_stats = nullptr) override {
    trace::Span span(std::string("pipeline:") + queries::QueryName(instance.id));
    CallCounters call;
    StatusOr<QueryOutput> result =
        ExecuteImpl(instance, dataset, mode, output_dir, call);
    Fold(call);
    mirror_.Publish(stats());
    if (call_stats != nullptr) *call_stats = AsStats(call);
    return result;
  }

 private:
  /// Counters for exactly one Execute() call, threaded through every stage
  /// and folded into the cumulative atomics afterwards. The decode counters
  /// are the atomic GopCacheCounters because the codec may update them from
  /// its own pool threads.
  struct CallCounters {
    video::codec::GopCacheCounters decode;
    int64_t frames_decoded_extra = 0;
    int64_t frames_encoded = 0;
    int64_t inference_hits = 0;
    int64_t cnn_frames_full = 0;
  };

  void Fold(const CallCounters& call) {
    decode_counters_.hits += call.decode.hits.load();
    decode_counters_.misses += call.decode.misses.load();
    decode_counters_.frames_decoded += call.decode.frames_decoded.load();
    frames_decoded_extra_ += call.frames_decoded_extra;
    frames_encoded_ += call.frames_encoded;
    inference_hits_ += call.inference_hits;
    cnn_frames_full_ += call.cnn_frames_full;
  }

  /// The per-call window mapped the same way stats() maps the cumulative
  /// counters.
  static EngineStats AsStats(const CallCounters& call) {
    EngineStats stats;
    stats.frames_decoded =
        call.decode.frames_decoded.load() + call.frames_decoded_extra;
    stats.frames_encoded = call.frames_encoded;
    stats.cache_hits = call.decode.hits.load() + call.inference_hits;
    stats.cache_misses = call.decode.misses.load();
    stats.cnn_frames_full = call.cnn_frames_full;
    return stats;
  }

  StatusOr<QueryOutput> ExecuteImpl(const QueryInstance& instance,
                                    const sim::Dataset& dataset, OutputMode mode,
                                    const std::string& output_dir,
                                    CallCounters& call);

  /// Whole-stream decode through the shared GOP cache.
  StatusOr<Video> DecodeCached(const video::codec::EncodedVideo& encoded,
                               CallCounters& call) {
    TRACE_SPAN("decode_cached");
    return video::codec::CachedDecode(encoded, *gop_cache_, &call.decode);
  }

  /// Whole-stream decode of a query input; the bitstream comes from the
  /// storage service when one is configured.
  StatusOr<Video> DecodeInput(const sim::VideoAsset& asset, CallCounters& call) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<const video::codec::EncodedVideo> encoded,
                        detail::ResolveInput(asset, options_));
    return DecodeCached(*encoded, call);
  }

  /// Inference memoisation: detection results keyed by frame content (and
  /// frame index, which seeds the detector's noise model). With few
  /// distinct inputs — the paper's duplicated-corpus scenario — repeated
  /// frames skip the CNN entirely, which is exactly the "aggressive
  /// caching" advantage Section 2 argues such corpora hand to systems.
  /// Returns per-frame detections unfiltered by object class; that is the
  /// representation the semantic cache stores, so Q2(c) and Q7 over
  /// different classes share one materialization.
  std::vector<std::vector<vision::Detection>> DetectUnfiltered(
      const Video& input, const std::vector<sim::FrameGroundTruth>& truth,
      CallCounters& call) {
    TRACE_SPAN("cached_boxes");
    std::vector<std::vector<vision::Detection>> result;
    result.reserve(input.frames.size());
    static const sim::FrameGroundTruth kEmpty;
    for (int f = 0; f < input.FrameCount(); ++f) {
      const Frame& frame = input.frames[static_cast<size_t>(f)];
      uint64_t key = frame.ContentHash() ^
                     (static_cast<uint64_t>(f) * 0x9E3779B97F4A7C15ULL);
      std::vector<vision::Detection> detections;
      bool cached = false;
      {
        std::lock_guard<std::mutex> lock(inference_mutex_);
        auto it = inference_cache_.find(key);
        if (it != inference_cache_.end()) {
          detections = it->second;
          cached = true;
        }
      }
      if (cached) {
        ++call.inference_hits;
      } else {
        const sim::FrameGroundTruth& gt =
            static_cast<size_t>(f) < truth.size() ? truth[static_cast<size_t>(f)]
                                                  : kEmpty;
        detections = detector_->Detect(frame, gt, f);
        ++call.cnn_frames_full;
        std::lock_guard<std::mutex> lock(inference_mutex_);
        if (inference_cache_.size() < 4096) {
          inference_cache_.emplace(key, detections);
        }
      }
      result.push_back(std::move(detections));
    }
    return result;
  }

  queries::SemanticKey SemanticKeyFor(
      const video::codec::EncodedVideo& encoded) const {
    queries::SemanticKey key;
    key.stream = video::codec::StreamIdentity(encoded);
    key.model = model_fingerprint_;
    key.threshold = 0.0;  // Raw detector output is what gets materialized.
    return key;
  }

  /// Whole-stream unfiltered detections plus the geometry needed to render
  /// them, resolved through the semantic cache when one is configured. A
  /// warm cache answers without decoding anything; `decoded` (optional) is
  /// a frame source the caller already holds, used on the compute path so a
  /// query that decodes anyway (Q7) never decodes twice.
  struct DetectionSet {
    int width = 0;
    int height = 0;
    double fps = 0.0;
    std::vector<std::vector<vision::Detection>> detections;
  };
  StatusOr<DetectionSet> StreamDetections(const sim::VideoAsset& asset,
                                          const Video* decoded,
                                          CallCounters& call) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<const video::codec::EncodedVideo> encoded,
                        detail::ResolveInput(asset, options_));
    DetectionSet set;
    set.width = encoded->width;
    set.height = encoded->height;
    set.fps = encoded->fps;
    auto compute_direct = [&]() -> StatusOr<std::vector<std::vector<vision::Detection>>> {
      if (decoded != nullptr) {
        return DetectUnfiltered(*decoded, asset.ground_truth, call);
      }
      VR_ASSIGN_OR_RETURN(Video input, DecodeCached(*encoded, call));
      return DetectUnfiltered(input, asset.ground_truth, call);
    };
    if (options_.semantic_cache == nullptr) {
      VR_ASSIGN_OR_RETURN(set.detections, compute_direct());
      return set;
    }
    queries::SemanticKey key = SemanticKeyFor(*encoded);
    queries::FrameRange range{0, encoded->FrameCount()};
    queries::SemanticCache::Outcome outcome;
    VR_ASSIGN_OR_RETURN(
        std::shared_ptr<const queries::SemanticEntry> entry,
        options_.semantic_cache->GetOrCompute(
            key, range,
            [&]() -> StatusOr<queries::SemanticEntry> {
              queries::SemanticEntry fresh;
              fresh.key = key;
              fresh.range = range;
              fresh.width = encoded->width;
              fresh.height = encoded->height;
              fresh.fps = encoded->fps;
              VR_ASSIGN_OR_RETURN(fresh.detections, compute_direct());
              fresh.RecomputeBytes();
              return fresh;
            },
            &outcome));
    if (outcome == queries::SemanticCache::Outcome::kHit) ++call.inference_hits;
    set.detections = queries::SemanticCache::Slice(*entry, range);
    return set;
  }

  /// FinishVideoResult with the encoded-frame count folded into the atomic
  /// counter (the shared helper writes through a plain pointer).
  Status Finish(const Video& result, const QueryInstance& instance,
                OutputMode mode, const std::string& output_dir,
                QueryOutput& output, CallCounters& call) {
    int64_t encoded = 0;
    Status status = detail::FinishVideoResult(result, instance, options_, mode,
                                              output_dir, name(), output, &encoded);
    call.frames_encoded += encoded;
    return status;
  }

  /// Fused per-frame pipeline: pulls decoded frames (through the cache),
  /// applies `fn`, and streams results into the output encoder frame by
  /// frame. Only in write mode is an output bitstream kept.
  template <typename Fn>
  StatusOr<Video> FusedPipeline(const Video& input, Fn&& fn) {
    TRACE_SPAN("fused_pipeline");
    Video output;
    output.fps = input.fps;
    output.frames.reserve(input.frames.size());
    for (int i = 0; i < input.FrameCount(); ++i) {
      VR_ASSIGN_OR_RETURN(Frame frame, fn(input.frames[static_cast<size_t>(i)], i));
      output.frames.push_back(std::move(frame));
    }
    return output;
  }

  EngineOptions options_;
  vision::DetectorOptions detector_options_;
  std::string model_fingerprint_;
  std::unique_ptr<vision::MiniYolo> detector_;
  video::codec::GopCache* gop_cache_;
  video::codec::GopCacheCounters decode_counters_;
  std::mutex inference_mutex_;
  std::unordered_map<uint64_t, std::vector<vision::Detection>> inference_cache_;
  std::atomic<int64_t> frames_decoded_extra_{0};  // Stitch inputs (Q9/Q10).
  std::atomic<int64_t> frames_encoded_{0};
  std::atomic<int64_t> inference_hits_{0};
  std::atomic<int64_t> cnn_frames_full_{0};
  detail::EngineMetricsMirror mirror_{"pipeline"};
};

StatusOr<QueryOutput> PipelineEngine::ExecuteImpl(const QueryInstance& instance,
                                                  const sim::Dataset& dataset,
                                                  OutputMode mode,
                                                  const std::string& output_dir,
                                                  CallCounters& call) {
  QueryOutput output;
  queries::ReferenceContext context;
  context.dataset = &dataset;
  context.detector_options = detector_options_;
  context.plate_match_threshold = options_.plate_match_threshold;

  switch (instance.id) {
    case QueryId::kQ1: {
      // vr:Q1:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      const video::codec::EncodedVideo& meta = asset->container.video;
      // Lazy temporal selection: only the keyframe-aligned range that covers
      // [t1, t2) is ever decoded — and with a storage service configured,
      // only its covering GOP-aligned segments are ever fetched.
      int first = std::clamp(static_cast<int>(instance.q1_t1 * meta.fps), 0,
                             meta.FrameCount() - 1);
      int last = std::clamp(static_cast<int>(std::ceil(instance.q1_t2 * meta.fps)),
                            first + 1, meta.FrameCount());
      VR_ASSIGN_OR_RETURN(
          detail::ResolvedRange input,
          detail::ResolveInputRange(*asset, options_, first, last - first));
      VR_ASSIGN_OR_RETURN(Video range,
                          video::codec::CachedDecodeRange(
                              *input.video, first - input.first_frame,
                              last - first, *gop_cache_, &call.decode));
      VR_ASSIGN_OR_RETURN(Video cropped, FusedPipeline(range, [&](const Frame& f, int) {
                            return video::Crop(f, instance.q1_rect);
                          }));
      VR_RETURN_IF_ERROR(Finish(cropped, instance, mode, output_dir, output, call));
      // vr:Q1:end
      return output;
    }
    case QueryId::kQ2a: {
      // vr:Q2(a):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      VR_ASSIGN_OR_RETURN(Video gray, FusedPipeline(input, [](const Frame& f, int) {
                            return StatusOr<Frame>(video::Grayscale(f));
                          }));
      VR_RETURN_IF_ERROR(Finish(gray, instance, mode, output_dir, output, call));
      // vr:Q2(a):end
      return output;
    }
    case QueryId::kQ2b: {
      // vr:Q2(b):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      VR_ASSIGN_OR_RETURN(Video blurred,
                          FusedPipeline(input, [&](const Frame& f, int) {
                            return video::GaussianBlur(f, instance.q2b_d);
                          }));
      VR_RETURN_IF_ERROR(Finish(blurred, instance, mode, output_dir, output, call));
      // vr:Q2(b):end
      return output;
    }
    case QueryId::kQ2c: {
      // vr:Q2(c):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      // The box video is a pure function of the detections, so with a warm
      // semantic cache this query never invokes the decoder at all.
      VR_ASSIGN_OR_RETURN(DetectionSet set,
                          StreamDetections(*asset, /*decoded=*/nullptr, call));
      queries::ReferenceResult result = queries::RenderBoxesFromDetections(
          set.width, set.height, set.fps, set.detections, instance.object_class);
      output.detections = std::move(result.detections);
      VR_RETURN_IF_ERROR(Finish(result.video, instance, mode, output_dir, output, call));
      // vr:Q2(c):end
      return output;
    }
    case QueryId::kQ2d: {
      // vr:Q2(d):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      // The fused pipeline holds no materialised window sums, so the mean
      // filter recomputes its window per frame (the paper's slow path).
      VR_ASSIGN_OR_RETURN(Video masked,
                          vision::MaskBackgroundNaive(input, instance.q2d_m,
                                                      instance.q2d_epsilon));
      VR_RETURN_IF_ERROR(Finish(masked, instance, mode, output_dir, output, call));
      // vr:Q2(d):end
      return output;
    }
    case QueryId::kQ3: {
      // vr:Q3:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      VR_ASSIGN_OR_RETURN(Video tiled,
                          vision::TiledReencode(input, instance.q3_dx,
                                                instance.q3_dy, instance.q3_bitrates,
                                                options_.output_profile));
      VR_RETURN_IF_ERROR(Finish(tiled, instance, mode, output_dir, output, call));
      // vr:Q3:end
      return output;
    }
    case QueryId::kQ4: {
      // vr:Q4:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      VR_ASSIGN_OR_RETURN(Video up, FusedPipeline(input, [&](const Frame& f, int) {
                            return video::BilinearResize(
                                f, f.width() * instance.q45_alpha,
                                f.height() * instance.q45_beta);
                          }));
      VR_RETURN_IF_ERROR(Finish(up, instance, mode, output_dir, output, call));
      // vr:Q4:end
      return output;
    }
    case QueryId::kQ5: {
      // vr:Q5:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      VR_ASSIGN_OR_RETURN(Video down, FusedPipeline(input, [&](const Frame& f, int) {
                            return video::Downsample(
                                f, std::max(1, f.width() / instance.q45_alpha),
                                std::max(1, f.height() / instance.q45_beta));
                          }));
      VR_RETURN_IF_ERROR(Finish(down, instance, mode, output_dir, output, call));
      // vr:Q5:end
      return output;
    }
    case QueryId::kQ6a: {
      // vr:Q6(a):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      // Consume the VCD's encoded box-video input (it flows through the
      // shared GOP cache like any other stream) and fuse the join.
      const video::container::MetadataTrack* box_track =
          asset->container.FindTrack("BOXV");
      if (box_track == nullptr) {
        return Status::FailedPrecondition("input has no offline box video");
      }
      VR_ASSIGN_OR_RETURN(video::container::Container box_container,
                          video::container::Demux(box_track->payload));
      VR_ASSIGN_OR_RETURN(Video boxes, DecodeCached(box_container.video, call));
      VR_ASSIGN_OR_RETURN(Video merged, queries::UnionBoxesQuery(input, boxes));
      VR_RETURN_IF_ERROR(Finish(merged, instance, mode, output_dir, output, call));
      // vr:Q6(a):end
      return output;
    }
    case QueryId::kQ6b: {
      // vr:Q6(b):begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      const video::container::MetadataTrack* track =
          asset->container.FindTrack("WVTT");
      if (track == nullptr) {
        return Status::FailedPrecondition("input has no caption track");
      }
      VR_ASSIGN_OR_RETURN(video::WebVttDocument captions,
                          video::ParseWebVtt(std::string(track->payload.begin(),
                                                         track->payload.end())));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      // Scalar CPU captioning: each frame re-renders its overlay from the
      // cue list and coalesces through a float RGB round-trip per pixel.
      VR_ASSIGN_OR_RETURN(Video merged, FusedPipeline(input, [&](const Frame& f,
                                                                 int i) {
        Frame overlay = vision::RenderCaptionFrame(f.width(), f.height(), captions,
                                                   i / input.fps);
        Frame merged_frame(f.width(), f.height());
        for (int y = 0; y < f.height(); ++y) {
          for (int x = 0; x < f.width(); ++x) {
            video::Yuv base{f.Y(x, y), f.U(x, y), f.V(x, y)};
            video::Yuv over{overlay.Y(x, y), overlay.U(x, y), overlay.V(x, y)};
            // Linear-light blend path: convert through RGB floats even for
            // the pass-through case.
            video::Rgb base_rgb = video::YuvToRgb(base);
            video::Rgb over_rgb = video::YuvToRgb(over);
            bool use_overlay = !video::IsOmega(over);
            video::Rgb blended = use_overlay ? over_rgb : base_rgb;
            video::Yuv out_pixel = video::RgbToYuv(blended);
            merged_frame.SetPixel(x, y, out_pixel.y, out_pixel.u, out_pixel.v);
          }
        }
        return StatusOr<Frame>(std::move(merged_frame));
      }));
      VR_RETURN_IF_ERROR(Finish(merged, instance, mode, output_dir, output, call));
      // vr:Q6(b):end
      return output;
    }
    case QueryId::kQ7: {
      // vr:Q7:begin
      VR_ASSIGN_OR_RETURN(const sim::VideoAsset* asset,
                          detail::InputAsset(instance, dataset));
      VR_ASSIGN_OR_RETURN(Video input, DecodeInput(*asset, call));
      // The union/mask stages are pixel-level, so Q7 always decodes; a warm
      // semantic cache still skips the CNN (the dominant cost).
      VR_ASSIGN_OR_RETURN(DetectionSet set,
                          StreamDetections(*asset, &input, call));
      queries::ReferenceResult boxes = queries::RenderBoxesFromDetections(
          set.width, set.height, set.fps, set.detections, instance.object_class);
      VR_ASSIGN_OR_RETURN(Video merged,
                          queries::UnionBoxesQuery(input, boxes.video));
      VR_ASSIGN_OR_RETURN(Video masked,
                          vision::MaskBackgroundNaive(merged, instance.q2d_m,
                                                      instance.q2d_epsilon));
      output.detections = std::move(boxes.detections);
      VR_RETURN_IF_ERROR(Finish(masked, instance, mode, output_dir, output, call));
      // vr:Q7:end
      return output;
    }
    case QueryId::kQ8: {
      // vr:Q8:begin
      VR_ASSIGN_OR_RETURN(Video tracking,
                          queries::TrackingQuery(context, instance.q8_plate,
                                                 nullptr));
      VR_RETURN_IF_ERROR(Finish(tracking, instance, mode, output_dir, output, call));
      // vr:Q8:end
      return output;
    }
    case QueryId::kQ9: {
      // vr:Q9:begin
      VR_ASSIGN_OR_RETURN(Video stitched,
                          queries::StitchQuery(context, instance.pano_group));
      call.frames_decoded_extra += 4 * stitched.FrameCount();
      VR_RETURN_IF_ERROR(Finish(stitched, instance, mode, output_dir, output, call));
      // vr:Q9:end
      return output;
    }
    case QueryId::kQ10: {
      // vr:Q10:begin
      VR_ASSIGN_OR_RETURN(Video stitched,
                          queries::StitchQuery(context, instance.pano_group));
      call.frames_decoded_extra += 4 * stitched.FrameCount();
      VR_ASSIGN_OR_RETURN(
          Video result,
          queries::TileStreamQuery(stitched, instance.q10_bitrates,
                                   instance.q10_client_width,
                                   instance.q10_client_height,
                                   options_.output_profile));
      VR_RETURN_IF_ERROR(Finish(result, instance, mode, output_dir, output, call));
      // vr:Q10:end
      return output;
    }
  }
  return Status::Unimplemented("unknown query");
}

}  // namespace

std::unique_ptr<Vdbms> MakePipelineEngine(const EngineOptions& options) {
  return std::make_unique<PipelineEngine>(options);
}

}  // namespace visualroad::systems
