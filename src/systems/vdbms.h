#ifndef VISUALROAD_SYSTEMS_VDBMS_H_
#define VISUALROAD_SYSTEMS_VDBMS_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "queries/plan.h"
#include "queries/reference.h"
#include "queries/semantic_cache.h"

namespace visualroad::video::codec {
class GopCache;
}  // namespace visualroad::video::codec

namespace visualroad::storage {
class VideoStorageService;
}  // namespace visualroad::storage

namespace visualroad::systems {

/// Benchmark execution modes (Section 3.2). Offline gives the engine random
/// access to whole files; online exposes a throttled forward-only iterator.
enum class ExecutionMode {
  kOffline = 0,
  kOnline = 1,
};

/// Result handling modes (Section 3.2). Write mode persists each result so
/// the VCD can validate it (persist time included in the measured runtime);
/// streaming mode discards results.
enum class OutputMode {
  kWrite = 0,
  kStreaming = 1,
};

/// Engine configuration shared by all three systems.
struct EngineOptions {
  /// Materialisation budget for the batch engine; exceeding it triggers
  /// chunked re-decoding (the "memory thrashing" regime of Section 6.2).
  int64_t memory_budget_bytes = int64_t{192} << 20;
  /// Hard ceiling: a single materialised output larger than this fails with
  /// ResourceExhausted (the batch engine's Q4 behaviour in the paper).
  int64_t memory_fail_bytes = int64_t{768} << 20;
  /// Worker threads for batch-parallel stages.
  int threads = 4;
  /// QP for encoding query outputs (low = near-lossless, so frame validation
  /// has headroom over the 40 dB threshold).
  int output_qp = 12;
  video::codec::Profile output_profile = video::codec::Profile::kH264Like;
  /// Reference detector settings; engines override input_size per their
  /// architecture.
  vision::DetectorOptions detector;
  /// Threads for GOP-parallel output encoding (and validation decodes).
  /// 0 means the codec pool default (hardware concurrency).
  int codec_threads = 0;
  /// Byte budget applied to the decoded-GOP cache at engine construction;
  /// 0 leaves the cache's current capacity untouched.
  int64_t gop_cache_bytes = 0;
  /// Decoded-GOP cache the engine routes decodes through. Null selects the
  /// process-wide GopCache::Global(); tests inject private instances.
  video::codec::GopCache* gop_cache = nullptr;
  double plate_match_threshold = 0.80;
  /// Storage-backed offline mode: when set, engines read input bitstreams
  /// (whole or as GOP-aligned frame ranges) from the storage service
  /// instead of the dataset's in-memory containers. The base tier returns
  /// the ingested bitstream byte-for-byte, so query results are identical
  /// either way. Borrowed; must outlive the engine.
  storage::VideoStorageService* vss = nullptr;
  /// Semantic result store for materialized inference outputs. Null turns
  /// semantic caching off entirely: engines run every query from scratch and
  /// results are byte-identical to the caching path by construction (both
  /// render from the same unfiltered detections). Borrowed; engines under
  /// one server share a single cache, which is what enables cross-tenant
  /// reuse. Tests inject private instances.
  queries::SemanticCache* semantic_cache = nullptr;
  /// Distributed scale-out fan-out (DESIGN.md Section 15): the number of
  /// worker processes the driver's coordinator shards batches across. 0 =
  /// single-process execution. Engines ignore it — it rides here so a
  /// worker's reconstructed EngineOptions mirror the coordinator's exactly.
  int workers = 0;
};

/// The outcome of one query instance.
struct QueryOutput {
  /// True when a result artefact was produced (write mode).
  bool produced = false;
  /// Encoded result video (write mode, video-producing queries).
  video::codec::EncodedVideo video;
  /// Per-frame detections (Q2(c)/Q6(a)/Q7), for semantic validation.
  std::vector<std::vector<vision::Detection>> detections;
  /// Path of the container written in write mode (empty otherwise).
  std::string written_path;
};

/// Execution counters exposed for tests and ablation benches.
struct EngineStats {
  int64_t frames_decoded = 0;
  int64_t frames_encoded = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t chunked_redecodes = 0;
  int64_t cnn_frames_full = 0;
  int64_t cnn_frames_cheap = 0;
  int64_t cnn_frames_skipped = 0;

  /// Field-wise accumulation, for summing per-call windows into a batch
  /// aggregate (the VCD merges in instance-index order so parallel and
  /// serial execution report identically).
  void Add(const EngineStats& other) {
    frames_decoded += other.frames_decoded;
    frames_encoded += other.frames_encoded;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    chunked_redecodes += other.chunked_redecodes;
    cnn_frames_full += other.cnn_frames_full;
    cnn_frames_cheap += other.cnn_frames_cheap;
    cnn_frames_skipped += other.cnn_frames_skipped;
  }
};

/// The architecture-agnostic interface every benchmarked VDBMS implements
/// (the paper expresses each query in a system-agnostic way; this interface
/// is this repository's equivalent contract).
class Vdbms {
 public:
  virtual ~Vdbms() = default;

  virtual const char* name() const = 0;

  /// Whether this system can express the query at all (NoScope-like engines
  /// support only a narrow slice; see Figure 5).
  virtual bool Supports(queries::QueryId id) const = 0;

  /// Whether Execute() may be called concurrently from multiple threads.
  /// The VCD's parallel batch mode only fans instances out to engines that
  /// opt in; stateful engines (caches keyed on shared maps, running
  /// counters without synchronisation) stay on the serial path.
  virtual bool ConcurrentSafe() const { return false; }

  /// Executes one query instance against the dataset. In write mode the
  /// result is encoded and persisted under `output_dir`.
  ///
  /// `call_stats` (optional) receives the engine counter movement of exactly
  /// this call: engines thread a per-call counter set through their stages
  /// and fold it into the cumulative stats() at the end, so the window is
  /// correct even when Execute() calls overlap on one engine — unlike a
  /// stats() before/after snapshot, which conflates whatever else ran in
  /// between. Filled (or left zero) on both success and failure.
  virtual StatusOr<QueryOutput> Execute(const queries::QueryInstance& instance,
                                        const sim::Dataset& dataset, OutputMode mode,
                                        const std::string& output_dir,
                                        EngineStats* call_stats = nullptr) = 0;

  /// Human-readable execution plan for `instance` without executing it
  /// (`vcd --explain`). Reports predicate pushdown windows, semantic-cache
  /// temperature, and the measured-selectivity stage order. Engines that do
  /// not plan return "".
  virtual std::string Explain(const queries::QueryInstance& instance,
                              const sim::Dataset& dataset) {
    (void)instance;
    (void)dataset;
    return "";
  }

  /// Drops caches and transient state; the VCD may call this between
  /// batches ("a VDBMS may optionally quiesce or restart upon completing a
  /// batch", Section 3.2).
  virtual void Quiesce() {}

  /// Cumulative execution counters for this engine instance. Pure virtual:
  /// every engine maintains real counters, so a silent all-zeros default can
  /// never mask a missing implementation.
  virtual EngineStats stats() const = 0;
};

/// Factory functions for the three comparison engines (see DESIGN.md for the
/// architectural correspondence to Scanner, LightDB, and NoScope).
std::unique_ptr<Vdbms> MakeBatchEngine(const EngineOptions& options);
std::unique_ptr<Vdbms> MakePipelineEngine(const EngineOptions& options);
std::unique_ptr<Vdbms> MakeCascadeEngine(const EngineOptions& options);

/// Shared helpers for engine implementations.
namespace detail {

/// The traffic asset a query instance addresses, or an error.
StatusOr<const sim::VideoAsset*> InputAsset(const queries::QueryInstance& instance,
                                            const sim::Dataset& dataset);

/// The input bitstream for `asset`: read from the storage service at the
/// asset's base tier when `options.vss` is set (storage-backed offline
/// mode), else a non-owning view of the in-memory container. Byte-identical
/// either way.
StatusOr<std::shared_ptr<const video::codec::EncodedVideo>> ResolveInput(
    const sim::VideoAsset& asset, const EngineOptions& options);

/// A resolved frame range: `video->frames[0]` is logical frame
/// `first_frame` of the input stream.
struct ResolvedRange {
  std::shared_ptr<const video::codec::EncodedVideo> video;
  int first_frame = 0;
};

/// The covering bitstream for frames [first, first+count) of `asset`: a
/// GOP-aligned range read through the storage service when `options.vss`
/// is set, else a view of the whole in-memory container.
StatusOr<ResolvedRange> ResolveInputRange(const sim::VideoAsset& asset,
                                          const EngineOptions& options,
                                          int first, int count);

/// Encodes `result` and, in write mode, persists it as a container under
/// `output_dir` with a name derived from `instance`. Fills `output`.
Status FinishVideoResult(const video::Video& result,
                         const queries::QueryInstance& instance,
                         const EngineOptions& options, OutputMode mode,
                         const std::string& output_dir, const char* engine_name,
                         QueryOutput& output, int64_t* frames_encoded);

/// Decoded size of one frame in bytes (YUV420).
int64_t FrameBytes(int width, int height);

/// Input frames a query instance consumes: Q8 scans every traffic stream,
/// Q9/Q10 read their whole panoramic group, everything else reads one
/// traffic stream. Feeds the VCD's throughput metrics and the query
/// server's goodput report.
int64_t InputFrameCount(const queries::QueryInstance& instance,
                        const sim::Dataset& dataset);

/// The GOP cache selected by `options`: the injected instance if any, else
/// the process-wide one; applies `gop_cache_bytes` when positive.
video::codec::GopCache& ResolveGopCache(const EngineOptions& options);

/// Publishes an engine's cumulative EngineStats into the process-wide
/// metrics registry as `vr_engine_*` counters labeled `engine="<name>"`.
/// Engines call Publish(stats()) after each Execute; the mirror tracks the
/// last published snapshot per instance, so concurrent executes publish
/// exact deltas and the per-instance EngineStats stays the source of truth.
class EngineMetricsMirror {
 public:
  explicit EngineMetricsMirror(const char* engine_name);

  /// Records one completed Execute and folds `current - last_published`
  /// into the registry counters.
  void Publish(const EngineStats& current);

 private:
  metrics::Counter& queries_;
  metrics::Counter& frames_decoded_;
  metrics::Counter& frames_encoded_;
  metrics::Counter& cache_hits_;
  metrics::Counter& cache_misses_;
  metrics::Counter& chunked_redecodes_;
  metrics::Counter& cnn_frames_full_;
  metrics::Counter& cnn_frames_cheap_;
  metrics::Counter& cnn_frames_skipped_;
  std::mutex mutex_;
  EngineStats last_;
};

}  // namespace detail

}  // namespace visualroad::systems

#endif  // VISUALROAD_SYSTEMS_VDBMS_H_
