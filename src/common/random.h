#ifndef VISUALROAD_COMMON_RANDOM_H_
#define VISUALROAD_COMMON_RANDOM_H_

#include <cstdint>
#include <string_view>

namespace visualroad {

/// SplitMix64 mixing step; used to derive independent seeds from a master
/// seed so every subsystem of the benchmark is deterministically seeded.
uint64_t SplitMix64(uint64_t& state);

/// Hashes a label into a 64-bit value (FNV-1a). Combined with the master
/// seed this gives named, order-independent substreams: the tile generator,
/// the camera placer, and the query-parameter sampler each draw from their
/// own stream, so adding draws to one never perturbs another.
uint64_t HashLabel(std::string_view label);

/// PCG32: a small, fast, statistically strong PRNG with a 64-bit state and
/// 64-bit stream-selector. Deterministic across platforms, which is what
/// lets two users of the benchmark reproduce the identical dataset from the
/// same seed (Section 3.1 of the paper).
class Pcg32 {
 public:
  /// Seeds the generator. `stream` selects one of 2^63 independent sequences.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Returns the next 32 uniformly random bits.
  uint32_t Next();

  /// Returns a uniform integer in [0, bound) using Lemire's method
  /// (unbiased, no modulo loop in the common case).
  uint32_t NextBounded(uint32_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p`.
  bool NextBool(double p);

  /// Returns a normally distributed value (Box-Muller, cached spare).
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Derives a PCG32 generator for a named substream of a master seed.
Pcg32 SubStream(uint64_t master_seed, std::string_view label, uint64_t index = 0);

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_RANDOM_H_
