#ifndef VISUALROAD_COMMON_GEOMETRY_H_
#define VISUALROAD_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace visualroad {

/// 2D vector of doubles (ground-plane coordinates, metres).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double Norm() const { return std::sqrt(x * x + y * y); }
};

/// 3D vector of doubles (world coordinates: x east, y north, z up, metres).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Norm() const { return std::sqrt(x * x + y * y + z * z); }
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

/// Row-major 3x3 matrix, used for camera rotations.
struct Mat3 {
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  Vec3 operator*(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }
  Mat3 operator*(const Mat3& o) const;
  Mat3 Transposed() const;

  /// Rotation about the +z (up) axis by `radians` (counter-clockwise).
  static Mat3 RotationZ(double radians);
  /// Rotation about the +x (east) axis by `radians`.
  static Mat3 RotationX(double radians);
};

/// Axis-aligned integer pixel rectangle, half-open: [x0, x1) x [y0, y1).
struct RectI {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;

  int Width() const { return x1 - x0; }
  int Height() const { return y1 - y0; }
  bool Empty() const { return x1 <= x0 || y1 <= y0; }
  int64_t Area() const {
    return Empty() ? 0 : static_cast<int64_t>(Width()) * Height();
  }
  bool Contains(int x, int y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  RectI Intersect(const RectI& o) const {
    return {std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
            std::min(y1, o.y1)};
  }
  RectI Union(const RectI& o) const {
    if (Empty()) return o;
    if (o.Empty()) return *this;
    return {std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1),
            std::max(y1, o.y1)};
  }
  /// Clamps this rectangle to [0,w) x [0,h).
  RectI Clamp(int w, int h) const {
    return {std::clamp(x0, 0, w), std::clamp(y0, 0, h), std::clamp(x1, 0, w),
            std::clamp(y1, 0, h)};
  }
  bool operator==(const RectI& o) const = default;
};

/// Intersection-over-union of two pixel rectangles, in [0, 1].
double IoU(const RectI& a, const RectI& b);

/// Jaccard distance = 1 - IoU. The paper's semantic-validation metric: a
/// detection is valid when JaccardDistance(reported, reference) <= epsilon
/// with epsilon = 0.5 (the PASCAL VOC threshold).
double JaccardDistance(const RectI& a, const RectI& b);

constexpr double kPi = 3.14159265358979323846;

/// Degrees-to-radians conversion.
constexpr double DegToRad(double degrees) { return degrees * kPi / 180.0; }
/// Radians-to-degrees conversion.
constexpr double RadToDeg(double radians) { return radians * 180.0 / kPi; }

/// Wraps an angle to (-pi, pi].
double WrapAngle(double radians);

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_GEOMETRY_H_
