#include "common/status.h"

namespace visualroad {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace visualroad
