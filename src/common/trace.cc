#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"

namespace visualroad::trace {

namespace {

/// Safety cap on retained events (~64 MB of spans). Flushing is lossless up
/// to this point; beyond it spans are dropped and counted, never blocked on.
constexpr size_t kMaxSessionEvents = size_t{1} << 20;

bool InitialEnabled() {
#ifdef VISUALROAD_TRACE_DEFAULT_ON
  return true;
#else
  const char* env = std::getenv("VR_TRACE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitialEnabled()};
  return enabled;
}

double NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch).count();
}

/// Events a thread has completed but not yet flushed. The owning thread
/// appends under the buffer mutex (uncontended except during a flush);
/// flushes move the batch out. The shared_ptr keeps the buffer reachable by
/// the collector after the thread exits, so no span is ever lost.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  int tid = 0;
  int depth = 0;  // Owner-thread only; current span nesting.
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<Event> session;
  int next_tid = 1;
  int64_t dropped = 0;
};

Collector& GetCollector() {
  // Leaked: worker threads (e.g. the codec pool's) may record past static
  // destruction.
  static Collector* collector = new Collector();
  return *collector;
}

metrics::Counter& DroppedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global().GetCounter(
      "vr_trace_events_dropped_total",
      "Trace spans discarded because the session buffer hit its safety cap");
  return counter;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Collector& collector = GetCollector();
    std::lock_guard<std::mutex> lock(collector.mutex);
    fresh->tid = collector.next_tid++;
    collector.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

/// Moves every thread buffer's completed events into the session list,
/// preserving per-thread emission order. Caller holds the collector mutex.
void FlushLocked(Collector& collector) {
  for (auto& buffer : collector.buffers) {
    std::vector<Event> batch;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      batch.swap(buffer->events);
    }
    for (Event& event : batch) {
      if (collector.session.size() >= kMaxSessionEvents) {
        ++collector.dropped;
        DroppedCounter().Increment();
        continue;
      }
      collector.session.push_back(std::move(event));
    }
  }
}

/// Minimal JSON string escaping for span names.
void AppendJsonEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (!Enabled()) return;
  name_ = name;
  start_us_ = NowMicros();
  ++LocalBuffer().depth;
}

Span::Span(std::string name) {
  if (!Enabled()) return;
  owned_ = std::move(name);
  name_ = owned_.c_str();
  start_us_ = NowMicros();
  ++LocalBuffer().depth;
}

Span::~Span() {
  if (name_ == nullptr) return;
  double end_us = NowMicros();
  ThreadBuffer& buffer = LocalBuffer();
  int depth = --buffer.depth;
  Event event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = buffer.tid;
  event.depth = depth;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

size_t EventCount() {
  Collector& collector = GetCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  FlushLocked(collector);
  return collector.session.size();
}

std::vector<Event> EventsSince(size_t first_index) {
  Collector& collector = GetCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  FlushLocked(collector);
  if (first_index >= collector.session.size()) return {};
  return std::vector<Event>(collector.session.begin() +
                                static_cast<ptrdiff_t>(first_index),
                            collector.session.end());
}

std::vector<Event> AllEvents() { return EventsSince(0); }

void Clear() {
  Collector& collector = GetCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  FlushLocked(collector);
  collector.session.clear();
  collector.dropped = 0;
}

int64_t DroppedEvents() {
  Collector& collector = GetCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  return collector.dropped;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<Event>& events) {
  std::vector<const Event*> ordered;
  ordered.reserve(events.size());
  for (const Event& event : events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->start_us < b->start_us;
                   });

  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open trace file: " + path);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[128];
  for (const Event* event : ordered) {
    if (!first) out << ",";
    first = false;
    std::string name;
    AppendJsonEscaped(name, event->name);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                  "\"dur\":%.3f}",
                  event->tid, event->start_us, event->dur_us);
    out << "\n{\"cat\":\"vr\",\"name\":\"" << name << buffer;
  }
  out << "\n]}\n";
  if (!out.good()) return Status::IoError("failed writing trace file: " + path);
  return Status::Ok();
}

Status WriteChromeTrace(const std::string& path) {
  return WriteChromeTrace(path, AllEvents());
}

std::vector<SpanTotal> Summarize(const std::vector<Event>& events) {
  std::unordered_map<std::string, SpanTotal> by_name;
  for (const Event& event : events) {
    SpanTotal& total = by_name[event.name];
    total.name = event.name;
    ++total.count;
    total.total_seconds += event.dur_us * 1e-6;
  }
  std::vector<SpanTotal> totals;
  totals.reserve(by_name.size());
  for (auto& [name, total] : by_name) totals.push_back(std::move(total));
  std::sort(totals.begin(), totals.end(), [](const SpanTotal& a, const SpanTotal& b) {
    if (a.total_seconds != b.total_seconds) {
      return a.total_seconds > b.total_seconds;
    }
    return a.name < b.name;
  });
  return totals;
}

}  // namespace visualroad::trace
