#include "common/random.h"

#include <cassert>
#include <cmath>

namespace visualroad {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashLabel(std::string_view label) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : label) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1) | 1) {
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
  uint32_t rot = static_cast<uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  if (bound <= 1) return 0;
  uint64_t product = static_cast<uint64_t>(Next()) * bound;
  uint32_t low = static_cast<uint32_t>(product);
  if (low < bound) {
    uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      product = static_cast<uint64_t>(Next()) * bound;
      low = static_cast<uint32_t>(product);
    }
  }
  return static_cast<uint32_t>(product >> 32);
}

int64_t Pcg32::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit span requested.
    uint64_t value = (static_cast<uint64_t>(Next()) << 32) | Next();
    return static_cast<int64_t>(value);
  }
  if (range <= UINT32_MAX) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint32_t>(range)));
  }
  // Rejection-sample a 64-bit value into the range.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value;
  do {
    value = (static_cast<uint64_t>(Next()) << 32) | Next();
  } while (value >= limit);
  return lo + static_cast<int64_t>(value % range);
}

double Pcg32::NextDouble() {
  // 53 random bits into [0, 1).
  uint64_t bits = (static_cast<uint64_t>(Next()) << 21) ^ Next();
  return static_cast<double>(bits & ((1ULL << 53) - 1)) * (1.0 / 9007199254740992.0);
}

double Pcg32::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Pcg32::NextBool(double p) { return NextDouble() < p; }

double Pcg32::NextGaussian(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

Pcg32 SubStream(uint64_t master_seed, std::string_view label, uint64_t index) {
  uint64_t state = master_seed ^ HashLabel(label);
  state ^= index * 0x9e3779b97f4a7c15ULL;
  uint64_t seed = SplitMix64(state);
  uint64_t stream = SplitMix64(state);
  return Pcg32(seed, stream);
}

}  // namespace visualroad
