#ifndef VISUALROAD_COMMON_TRACE_H_
#define VISUALROAD_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace visualroad::trace {

/// One completed span. Timestamps are microseconds on the steady clock,
/// relative to the process trace epoch (first trace use), which is exactly
/// the layout Chrome's about://tracing expects.
struct Event {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Small dense id assigned to each recording thread (the exported `tid`).
  int tid = 0;
  /// Nesting depth at span open on that thread (0 = top level). The timing
  /// tree is reconstructible from (tid, start, dur) alone; depth makes
  /// summaries cheap.
  int depth = 0;
};

/// Whether spans record. Checked with one relaxed atomic load at every
/// TRACE_SPAN site, so a disabled build path costs a load and a branch.
bool Enabled();
void SetEnabled(bool enabled);

/// An RAII trace span: records [construction, destruction) into the calling
/// thread's buffer when tracing is enabled, and does nothing otherwise.
/// Instrument scopes with the TRACE_SPAN macro; use the class directly only
/// for dynamic names.
class Span {
 public:
  /// `name` must outlive the span (string literals and static names).
  explicit Span(const char* name);
  /// Dynamic-name overload; copies only when tracing is enabled.
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // Null when tracing was off at construction.
  std::string owned_;
  double start_us_ = 0.0;
};

/// Completed spans accumulate in per-thread buffers and are flushed (without
/// loss, preserving per-thread order) into one session-wide list the
/// functions below expose. Indices into that list are stable, so a caller
/// can bracket a phase with EventCount()/EventsSince() to attribute spans to
/// it — the driver does this per query batch.
size_t EventCount();
std::vector<Event> EventsSince(size_t first_index);
std::vector<Event> AllEvents();
/// Drops every recorded event (buffers and session list). Tests only.
void Clear();
/// Spans dropped because the session buffer hit its safety cap; also
/// exported as the vr_trace_events_dropped_total counter.
int64_t DroppedEvents();

/// Writes events as Chrome trace JSON ("traceEvents" array of complete "X"
/// events), loadable in chrome://tracing or https://ui.perfetto.dev.
Status WriteChromeTrace(const std::string& path, const std::vector<Event>& events);
/// Convenience: flushes and writes every session event.
Status WriteChromeTrace(const std::string& path);

/// Aggregate of all spans sharing a name.
struct SpanTotal {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
};

/// Per-name totals, descending by total time. Nested spans each contribute
/// their full duration to their own name (no self-time subtraction), so
/// totals across names can exceed wall-clock — the same convention as
/// inclusive-time profilers.
std::vector<SpanTotal> Summarize(const std::vector<Event>& events);

}  // namespace visualroad::trace

#define VR_TRACE_CONCAT_INNER_(x, y) x##y
#define VR_TRACE_CONCAT_(x, y) VR_TRACE_CONCAT_INNER_(x, y)

/// Opens a span covering the rest of the enclosing scope.
#define TRACE_SPAN(name) \
  ::visualroad::trace::Span VR_TRACE_CONCAT_(vr_trace_span_, __COUNTER__)(name)

#endif  // VISUALROAD_COMMON_TRACE_H_
