#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>

#include "common/stopwatch.h"

namespace visualroad {

namespace {

/// Converts a caught exception into a Status without letting it escape the
/// worker thread.
Status CurrentExceptionToStatus() {
  try {
    throw;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-standard exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads, const char* name) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  std::string labels = std::string("pool=\"") + name + "\"";
  registry_.submitted = &registry.GetCounter(
      "vr_pool_tasks_submitted_total",
      "Tasks handed to ThreadPool::Submit, including ParallelFor chunks",
      labels);
  registry_.executed = &registry.GetCounter(
      "vr_pool_tasks_executed_total", "Tasks a pool worker ran to completion",
      labels);
  registry_.failed = &registry.GetCounter(
      "vr_pool_tasks_failed_total",
      "Tasks that threw plus ParallelForStatus chunks that returned an error",
      labels);
  registry_.busy_seconds = &registry.GetCounter(
      "vr_pool_busy_seconds_total",
      "Wall-clock seconds pool workers spent inside tasks", labels);
  registry_.queue_peak = &registry.GetGauge(
      "vr_pool_queue_peak", "High-water mark of the pending-task queue depth",
      labels);
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
    ++stats_.tasks_submitted;
    stats_.queue_peak =
        std::max(stats_.queue_peak, static_cast<int64_t>(tasks_.size()));
    registry_.submitted->Increment();
    registry_.queue_peak->SetMax(static_cast<double>(stats_.queue_peak));
  }
  task_available_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  Status first = std::move(first_error_);
  first_error_ = Status::Ok();
  return first;
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn,
                             int grain) {
  Status status = ParallelForStatus(
      count,
      [&fn](int i) {
        fn(i);
        return Status::Ok();
      },
      grain);
  if (!status.ok()) {
    // Void callers have nowhere to put the error; park it for the next
    // Wait(), mirroring the Submit() path.
    std::unique_lock<std::mutex> lock(mutex_);
    if (first_error_.ok()) first_error_ = std::move(status);
  }
}

Status ThreadPool::ParallelForStatus(int count,
                                     const std::function<Status(int)>& fn,
                                     int grain) {
  if (count <= 0) return Status::Ok();
  if (grain <= 0) {
    // Several chunks per worker keeps the pool balanced without paying one
    // queue round-trip per index.
    grain = std::max(1, count / (num_threads() * 4));
  }
  int chunks = (count + grain - 1) / grain;

  // Completion is tracked per call so concurrent ParallelForStatus calls on
  // one pool cannot steal each other's errors or wake-ups. The shared_ptr
  // keeps the state alive until the last chunk task has released it, even
  // after the waiter has returned.
  struct CallState {
    std::mutex mutex;
    std::condition_variable done;
    int pending = 0;
    int failed_index = std::numeric_limits<int>::max();
    Status first_error;
    std::atomic<bool> failed{false};
  };
  auto state = std::make_shared<CallState>();
  state->pending = chunks;

  for (int c = 0; c < chunks; ++c) {
    int begin = c * grain;
    int end = std::min(count, begin + grain);
    Submit([this, state, begin, end, &fn] {
      Status status = Status::Ok();
      int failed_at = begin;
      // Once any chunk has failed, later chunks skip their work entirely
      // (the waiter only ever sees the lowest-index failure anyway).
      if (!state->failed.load(std::memory_order_relaxed)) {
        try {
          for (int i = begin; i < end; ++i) {
            status = fn(i);
            if (!status.ok()) {
              failed_at = i;
              break;
            }
          }
        } catch (...) {
          status = CurrentExceptionToStatus();
        }
      }
      if (!status.ok()) {
        state->failed.store(true, std::memory_order_relaxed);
        RecordChunkFailure();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!status.ok() && failed_at < state->failed_index) {
        state->failed_index = failed_at;
        state->first_error = std::move(status);
      }
      if (--state->pending == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->pending == 0; });
  return state->first_error;
}

PoolStats ThreadPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void ThreadPool::ResetQueuePeak() {
  std::unique_lock<std::mutex> lock(mutex_);
  stats_.queue_peak = static_cast<int64_t>(tasks_.size());
}

PoolStats PoolStatsDelta(const PoolStats& after, const PoolStats& before) {
  PoolStats delta;
  delta.tasks_submitted = after.tasks_submitted - before.tasks_submitted;
  delta.tasks_executed = after.tasks_executed - before.tasks_executed;
  delta.tasks_failed = after.tasks_failed - before.tasks_failed;
  delta.queue_peak = after.queue_peak;
  delta.busy_seconds = after.busy_seconds - before.busy_seconds;
  return delta;
}

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::RecordChunkFailure() {
  registry_.failed->Increment();
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.tasks_failed;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // Shutting down with no work left.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    Stopwatch watch;
    Status status = Status::Ok();
    try {
      task();
    } catch (...) {
      status = CurrentExceptionToStatus();
    }
    double elapsed = watch.ElapsedSeconds();
    registry_.executed->Increment();
    registry_.busy_seconds->Increment(elapsed);
    if (!status.ok()) registry_.failed->Increment();
    {
      // The decrement runs whether or not the task threw, so Wait() can
      // never strand on a poisoned counter.
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.tasks_executed;
      stats_.busy_seconds += elapsed;
      if (!status.ok()) {
        ++stats_.tasks_failed;
        if (first_error_.ok()) first_error_ = std::move(status);
      }
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace visualroad
