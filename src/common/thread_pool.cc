#include "common/thread_pool.h"

#include <algorithm>

namespace visualroad {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // Shutting down with no work left.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace visualroad
