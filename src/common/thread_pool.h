#ifndef VISUALROAD_COMMON_THREAD_POOL_H_
#define VISUALROAD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace visualroad {

/// A fixed-size worker pool. Used by the VCG's distributed mode (one worker
/// per simulated node) and by the BatchEngine's stage executor.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(i)` for i in [0, count) across the pool and waits. The calling
  /// thread does not participate, matching a dispatch-to-cluster model.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_THREAD_POOL_H_
