#ifndef VISUALROAD_COMMON_THREAD_POOL_H_
#define VISUALROAD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace visualroad {

/// Lifetime counters for one pool, aggregated across workers. The busy /
/// (threads x wall) ratio is the pool's parallel efficiency, which the
/// benchmark reports print per phase.
struct PoolStats {
  /// Tasks handed to Submit(), including the chunk tasks ParallelFor and
  /// ParallelForStatus create internally.
  int64_t tasks_submitted = 0;
  /// Tasks a worker ran to completion (successfully or not).
  int64_t tasks_executed = 0;
  /// Tasks that threw, plus ParallelForStatus chunks that returned an error.
  int64_t tasks_failed = 0;
  /// High-water mark of the pending-task queue depth.
  int64_t queue_peak = 0;
  /// Total wall-clock seconds workers spent inside tasks.
  double busy_seconds = 0.0;
};

/// Counter movement between two stats() snapshots of one pool (`after` minus
/// `before`), for per-phase attribution on a long-lived pool. queue_peak is
/// carried from `after` unchanged — a high-water mark is not a counter;
/// callers that want the peak of just their window call ResetQueuePeak() at
/// the window start.
PoolStats PoolStatsDelta(const PoolStats& after, const PoolStats& before);

/// A fixed-size worker pool. Used by the VCG (parallel tile generation and
/// distributed mode), the VCD's parallel batch execution, and the
/// BatchEngine's stage executor.
///
/// Tasks must not submit to (or wait on) their own pool: workers that block
/// on nested work can exhaust the pool and deadlock. Use a separate pool for
/// nested parallelism (the VCD's instance pool and an engine's stage pool
/// coexist this way).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1). `name` selects the
  /// `pool="<name>"` label under which this pool's counters aggregate in the
  /// process-wide metrics registry (docs/OBSERVABILITY.md lists the label
  /// values in use); pools sharing a name share registry counters, while the
  /// per-instance stats() snapshot below stays exact per pool.
  explicit ThreadPool(int num_threads, const char* name = "adhoc");

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. A task that throws does not take the
  /// worker (or the process) down: the first exception is captured and
  /// surfaced by the next Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Returns the first
  /// failure captured since the previous Wait() (a thrown exception becomes
  /// an Internal status) and clears it; Ok when every task succeeded.
  Status Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(i)` for i in [0, count) across the pool and waits. Indices are
  /// batched into chunks of `grain` (0 picks a grain that yields several
  /// chunks per worker), so cheap bodies do not pay one queue round-trip per
  /// index. The calling thread does not participate, matching a
  /// dispatch-to-cluster model. A body that throws is captured as with
  /// Submit() and surfaced by the next Wait().
  void ParallelFor(int count, const std::function<void(int)>& fn, int grain = 0);

  /// As ParallelFor, but the body returns Status and the call returns the
  /// failure with the lowest index (exceptions are converted to Internal).
  /// Once any chunk fails, not-yet-started chunks are skipped. Completion is
  /// tracked per call, so concurrent callers on one pool do not interfere.
  Status ParallelForStatus(int count, const std::function<Status(int)>& fn,
                           int grain = 0);

  /// Counters accumulated since construction.
  PoolStats stats() const;

  /// Resets the queue-peak high-water mark to the current queue depth, so the
  /// next stats() reports the peak reached since this call. Pairs with
  /// PoolStatsDelta() when one pool serves many measured phases. The
  /// process-wide vr_pool_queue_peak gauge keeps its lifetime high-water
  /// semantics and is unaffected.
  void ResetQueuePeak();

  /// The hardware concurrency, at least 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  /// Records a chunk failure in the pool counters (the error itself is
  /// routed through the call's own state, not the pool).
  void RecordChunkFailure();

  /// Registry instruments behind the `vr_pool_*` metric family, labeled with
  /// this pool's name. The lifetime counters in `stats_` remain the
  /// per-instance source of truth; these aggregate across instances.
  struct RegistryCounters {
    metrics::Counter* submitted = nullptr;
    metrics::Counter* executed = nullptr;
    metrics::Counter* failed = nullptr;
    metrics::Counter* busy_seconds = nullptr;
    metrics::Gauge* queue_peak = nullptr;
  };

  std::vector<std::thread> workers_;
  RegistryCounters registry_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  Status first_error_;
  PoolStats stats_;
};

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_THREAD_POOL_H_
