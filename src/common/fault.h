#ifndef VISUALROAD_COMMON_FAULT_H_
#define VISUALROAD_COMMON_FAULT_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"

namespace visualroad::fault {

/// Every place the benchmark can inject a fault. Each site draws from its
/// own deterministic substream of the injector seed, so adding draws at one
/// site never perturbs the schedule of another — the property that makes a
/// faulty run reproducible (same seed => same fault schedule).
enum class Site {
  kStoreReadFlap = 0,   // Transient datanode failure observed by a block read.
  kStoreSlowRead,       // A block read that completes but late.
  kStoreWriteFail,      // A replica write that fails mid-block.
  kRtpLoss,             // An RTP packet (or online frame) lost in the channel.
  kRtpReorder,          // An RTP packet delivered one slot late.
  kRtpJitter,           // Network delay on an online frame delivery.
  kTranscodeStall,      // A VSS transcode-on-read that stalls past its deadline.
  kRpcSend,             // A distributed RPC frame lost/failed on send.
  kWorkerCrash,         // A worker process killed before a dispatch lands.
};
inline constexpr int kSiteCount = 9;

/// Stable lower_snake label for a site ("store_read_flap", ...). Used for
/// substream derivation, metric labels, and trace span names.
std::string_view SiteName(Site site);

/// Per-site fault probabilities plus delay magnitudes. A default-constructed
/// profile injects nothing; `vcd --faults=<name>` selects a named profile.
struct FaultProfile {
  std::string name = "none";
  std::array<double, kSiteCount> probability{};  // All zero by default.

  // Delay magnitudes, deliberately small so faulty runs stay fast.
  std::chrono::microseconds slow_read_delay{2000};
  std::chrono::microseconds jitter_delay{1000};
  std::chrono::microseconds transcode_stall_delay{5000};

  double& prob(Site site) { return probability[static_cast<int>(site)]; }
  double prob(Site site) const { return probability[static_cast<int>(site)]; }
  /// True when any site has nonzero probability.
  bool any() const;
};

/// Looks up a named profile: "none", "flaky" (transient storage faults plus
/// mild channel loss), "lossy" (heavy RTP loss/reorder/jitter), "degraded"
/// (every transcode stalls past its deadline). Unknown names are an error
/// listing the valid choices.
StatusOr<FaultProfile> ProfileByName(std::string_view name);

/// A seeded, deterministic fault source. Each site owns an independent
/// Pcg32 substream (derived from the seed and the site name) behind its own
/// mutex, so concurrent callers at different sites never contend and the
/// per-site outcome sequence depends only on the seed and the number of
/// draws at that site. Thread-safe.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, uint64_t seed);

  /// Draws the next outcome for `site`: true with the profile probability.
  /// Also counts the draw (and any injection) in the vr_fault_* metrics.
  bool ShouldInject(Site site);

  /// ShouldInject + sleep for the site's configured delay when it fires.
  /// Returns true when a delay was injected.
  bool MaybeDelay(Site site);

  const FaultProfile& profile() const { return profile_; }
  uint64_t seed() const { return seed_; }

  /// Total draws / injections at `site` so far (for tests and reports).
  int64_t draws(Site site) const;
  int64_t injected(Site site) const;

 private:
  struct SiteState {
    mutable std::mutex mutex;
    Pcg32 rng;
    int64_t draws = 0;
    int64_t injected = 0;
  };

  FaultProfile profile_;
  uint64_t seed_;
  std::array<SiteState, kSiteCount> sites_;
};

/// Bounds for RetryPolicy: capped exponential backoff under an overall
/// deadline. Defaults keep tier-1 tests fast (a failed op gives up after
/// ~7 ms of sleeping).
struct RetryOptions {
  int max_attempts = 4;
  std::chrono::microseconds initial_backoff{1000};
  std::chrono::microseconds max_backoff{4000};
  double backoff_multiplier = 2.0;
  /// Overall wall-clock budget across all attempts (0 = attempts-only).
  std::chrono::microseconds deadline{50000};
};

/// Returns true when `code` is worth retrying (transient-shaped errors:
/// IoError, DataLoss, ResourceExhausted, Internal). Caller bugs
/// (InvalidArgument, NotFound, OutOfRange, ...) are returned immediately.
bool IsRetryable(StatusCode code);

/// Runs an operation with capped exponential backoff under a deadline,
/// recording vr_retry_* metrics (labeled by site) and a `retry:<site>` trace
/// span around any attempt after the first. The first attempt runs with no
/// overhead beyond one clock read, so wrapping a hot path that rarely fails
/// is cheap.
class RetryPolicy {
 public:
  RetryPolicy(Site site, RetryOptions options);

  /// Invokes `op` until it succeeds, returns a non-retryable error, exhausts
  /// max_attempts, or exceeds the deadline. `attempts_out` (optional)
  /// receives the number of attempts made.
  Status Run(const std::function<Status()>& op, int* attempts_out = nullptr);

 private:
  Site site_;
  RetryOptions options_;
};

/// Process-wide retry accounting, mirrored from the vr_retry_* metrics so
/// the driver can snapshot deltas per query batch without parsing the
/// Prometheus text. Global deltas conflate whatever else ran in the window;
/// per-instance attribution uses the thread-scoped counters below.
int64_t TotalRetries();
int64_t TotalGiveups();

/// Retry attempts made by code running on the current thread. RetryPolicy
/// increments this on the calling thread alongside the global counter, so a
/// caller that brackets an operation with two reads gets the operation's
/// exact retry count even while other threads retry concurrently (the VCD
/// attributes retries to query instances this way when batches overlap).
int64_t ThreadRetries();

/// Degraded deliveries recorded by code running on the current thread:
/// online freeze-frame concealment and VSS reads served past the transcode
/// deadline both call NoteDegraded() at their existing increment sites, which
/// all run on the reading caller's own thread. Bracketing an instance with
/// two reads therefore counts each degraded frame exactly once, regardless
/// of which other batches share the storage service. The exported views
/// remain vr_vss_degraded_reads_total and vr_rtp_frames_concealed_total.
int64_t ThreadDegraded();

/// Records `count` degraded deliveries against the current thread. Called by
/// the degrade sites (VSS, online sources); not a metric — the sites keep
/// their own registry instruments.
void NoteDegraded(int64_t count = 1);

}  // namespace visualroad::fault

#endif  // VISUALROAD_COMMON_FAULT_H_
