#ifndef VISUALROAD_COMMON_STATUS_H_
#define VISUALROAD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace visualroad {

/// Canonical error codes, modeled after the usual database-engine set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kFailedPrecondition,
  kDataLoss,
  kIoError,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result used throughout the library instead
/// of exceptions. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the value
/// of an errored StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error keeps call sites terse,
  /// mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace visualroad

/// Propagates a non-OK Status to the caller.
#define VR_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::visualroad::Status _vr_status = (expr);     \
    if (!_vr_status.ok()) return _vr_status;      \
  } while (false)

#define VR_STATUS_CONCAT_INNER_(x, y) x##y
#define VR_STATUS_CONCAT_(x, y) VR_STATUS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a StatusOr), propagating errors, otherwise moving the
/// value into `lhs`.
#define VR_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto VR_STATUS_CONCAT_(_vr_statusor_, __LINE__) = (rexpr);        \
  if (!VR_STATUS_CONCAT_(_vr_statusor_, __LINE__).ok())             \
    return VR_STATUS_CONCAT_(_vr_statusor_, __LINE__).status();     \
  lhs = std::move(VR_STATUS_CONCAT_(_vr_statusor_, __LINE__)).value()

#endif  // VISUALROAD_COMMON_STATUS_H_
