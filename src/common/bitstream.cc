#include "common/bitstream.h"

#include <bit>
#include <cassert>

namespace visualroad {

void BitWriter::WriteBits(uint64_t bits, int count) {
  assert(count >= 0 && count <= 57);
  for (int i = count - 1; i >= 0; --i) {
    current_ = static_cast<uint8_t>((current_ << 1) | ((bits >> i) & 1));
    if (++bit_pos_ == 8) {
      buffer_.push_back(current_);
      current_ = 0;
      bit_pos_ = 0;
    }
  }
}

void BitWriter::WriteUe(uint32_t value) {
  // Encode value+1 as <leading zeros><binary>.
  uint64_t v = static_cast<uint64_t>(value) + 1;
  int bits = 64 - std::countl_zero(v);
  WriteBits(0, bits - 1);
  WriteBits(v, bits);
}

void BitWriter::WriteSe(int32_t value) {
  // Map 0, 1, -1, 2, -2, ... to 0, 1, 2, 3, 4, ...
  uint32_t mapped =
      value > 0 ? 2 * static_cast<uint32_t>(value) - 1 : 2 * static_cast<uint32_t>(-value);
  WriteUe(mapped);
}

std::vector<uint8_t> BitWriter::Finish() {
  if (bit_pos_ > 0) {
    buffer_.push_back(static_cast<uint8_t>(current_ << (8 - bit_pos_)));
    current_ = 0;
    bit_pos_ = 0;
  }
  return std::move(buffer_);
}

uint64_t BitReader::ReadBits(int count) {
  assert(count >= 0 && count <= 57);
  uint64_t result = 0;
  for (int i = 0; i < count; ++i) {
    uint64_t bit = 0;
    if (byte_pos_ < size_) {
      bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
      if (++bit_pos_ == 8) {
        bit_pos_ = 0;
        ++byte_pos_;
      }
    }
    result = (result << 1) | bit;
  }
  return result;
}

uint32_t BitReader::ReadUe() {
  int zeros = 0;
  while (!ReadBit()) {
    if (++zeros > 32 || (byte_pos_ >= size_)) return 0;  // Corrupt stream guard.
  }
  uint64_t value = 1;
  value = (value << zeros) | ReadBits(zeros);
  return static_cast<uint32_t>(value - 1);
}

int32_t BitReader::ReadSe() {
  uint32_t mapped = ReadUe();
  if (mapped == 0) return 0;
  uint32_t magnitude = (mapped + 1) / 2;
  return (mapped & 1) ? static_cast<int32_t>(magnitude)
                      : -static_cast<int32_t>(magnitude);
}

}  // namespace visualroad
