#include "common/fault.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"

namespace visualroad::fault {
namespace {

std::atomic<int64_t> g_total_retries{0};
std::atomic<int64_t> g_total_giveups{0};

// Thread-scoped mirrors of the robustness counters; see ThreadRetries() /
// ThreadDegraded() in the header for the attribution contract.
thread_local int64_t t_thread_retries = 0;
thread_local int64_t t_thread_degraded = 0;

struct SiteInstruments {
  metrics::Counter* draws = nullptr;
  metrics::Counter* injected = nullptr;
  metrics::Counter* attempts = nullptr;
  metrics::Counter* retries = nullptr;
  metrics::Counter* giveups = nullptr;
  metrics::Counter* sleep_seconds = nullptr;
};

/// One instrument set per site, registered on first use. The label body is
/// `site="<name>"` so every site exports as its own sample line.
const SiteInstruments& InstrumentsFor(Site site) {
  static std::array<SiteInstruments, kSiteCount>* all = [] {
    auto* a = new std::array<SiteInstruments, kSiteCount>();
    auto& registry = metrics::MetricsRegistry::Global();
    for (int i = 0; i < kSiteCount; ++i) {
      std::string label =
          "site=\"" + std::string(SiteName(static_cast<Site>(i))) + "\"";
      (*a)[i].draws = &registry.GetCounter(
          "vr_fault_draws_total",
          "Fault-injection decisions drawn, by site.", label);
      (*a)[i].injected = &registry.GetCounter(
          "vr_fault_injected_total",
          "Faults actually injected, by site.", label);
      (*a)[i].attempts = &registry.GetCounter(
          "vr_retry_attempts_total",
          "Operation attempts made under a RetryPolicy, by site.", label);
      (*a)[i].retries = &registry.GetCounter(
          "vr_retry_retries_total",
          "Attempts beyond the first under a RetryPolicy, by site.", label);
      (*a)[i].giveups = &registry.GetCounter(
          "vr_retry_giveups_total",
          "RetryPolicy runs that exhausted attempts or deadline, by site.",
          label);
      (*a)[i].sleep_seconds = &registry.GetCounter(
          "vr_retry_sleep_seconds_total",
          "Total backoff sleep under a RetryPolicy, by site.", label);
    }
    return a;
  }();
  return (*all)[static_cast<int>(site)];
}

}  // namespace

std::string_view SiteName(Site site) {
  switch (site) {
    case Site::kStoreReadFlap: return "store_read_flap";
    case Site::kStoreSlowRead: return "store_slow_read";
    case Site::kStoreWriteFail: return "store_write_fail";
    case Site::kRtpLoss: return "rtp_loss";
    case Site::kRtpReorder: return "rtp_reorder";
    case Site::kRtpJitter: return "rtp_jitter";
    case Site::kTranscodeStall: return "transcode_stall";
    case Site::kRpcSend: return "rpc_send";
    case Site::kWorkerCrash: return "worker_crash";
  }
  return "unknown";
}

bool FaultProfile::any() const {
  return std::any_of(probability.begin(), probability.end(),
                     [](double p) { return p > 0.0; });
}

StatusOr<FaultProfile> ProfileByName(std::string_view name) {
  FaultProfile p;
  p.name = std::string(name);
  if (name == "none") {
    return p;
  }
  if (name == "flaky") {
    // Transient storage trouble dominates: reads flap and retry, a few
    // replica writes fail over to another node, transcodes sometimes stall
    // past their deadline, and the channel drops the odd packet.
    p.prob(Site::kStoreReadFlap) = 0.35;
    p.prob(Site::kStoreSlowRead) = 0.05;
    p.prob(Site::kStoreWriteFail) = 0.05;
    p.prob(Site::kRtpLoss) = 0.05;
    p.prob(Site::kRtpReorder) = 0.02;
    p.prob(Site::kRtpJitter) = 0.05;
    p.prob(Site::kTranscodeStall) = 0.30;
    return p;
  }
  if (name == "lossy") {
    // A bad network, healthy storage: online frames go missing and arrive
    // late far more often than datanodes misbehave.
    p.prob(Site::kRtpLoss) = 0.20;
    p.prob(Site::kRtpReorder) = 0.10;
    p.prob(Site::kRtpJitter) = 0.20;
    return p;
  }
  if (name == "degraded") {
    // Every transcode stalls: forces the VSS degradation path on each
    // transcode-on-read, with moderate read flap underneath.
    p.prob(Site::kTranscodeStall) = 1.0;
    p.prob(Site::kStoreReadFlap) = 0.15;
    return p;
  }
  if (name == "cluster") {
    // Distributed-execution trouble: RPC sends fail (forcing reconnect +
    // retry under the rpc_send RetryPolicy) and worker processes crash
    // before a dispatch lands (forcing dead-worker re-dispatch). The
    // coordinator never crashes its last live worker, so a cluster run
    // always completes.
    p.prob(Site::kRpcSend) = 0.10;
    p.prob(Site::kWorkerCrash) = 0.20;
    return p;
  }
  return Status::InvalidArgument(
      "unknown fault profile '" + std::string(name) +
      "' (choose none, flaky, lossy, degraded, or cluster)");
}

FaultInjector::FaultInjector(FaultProfile profile, uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {
  for (int i = 0; i < kSiteCount; ++i) {
    sites_[i].rng =
        SubStream(seed_, "fault", HashLabel(SiteName(static_cast<Site>(i))));
  }
}

bool FaultInjector::ShouldInject(Site site) {
  double p = profile_.prob(site);
  auto& state = sites_[static_cast<int>(site)];
  bool fire;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    // Always draw, even at p == 0, so enabling a site later does not shift
    // the schedule of the others and a "none" run consumes the same stream.
    fire = state.rng.NextBool(p);
    ++state.draws;
    if (fire) ++state.injected;
  }
  const SiteInstruments& inst = InstrumentsFor(site);
  inst.draws->Increment();
  if (fire) inst.injected->Increment();
  return fire;
}

bool FaultInjector::MaybeDelay(Site site) {
  if (!ShouldInject(site)) return false;
  std::chrono::microseconds delay{0};
  switch (site) {
    case Site::kStoreSlowRead: delay = profile_.slow_read_delay; break;
    case Site::kRtpJitter: delay = profile_.jitter_delay; break;
    case Site::kTranscodeStall: delay = profile_.transcode_stall_delay; break;
    default: break;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return true;
}

int64_t FaultInjector::draws(Site site) const {
  const auto& state = sites_[static_cast<int>(site)];
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.draws;
}

int64_t FaultInjector::injected(Site site) const {
  const auto& state = sites_[static_cast<int>(site)];
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.injected;
}

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
    case StatusCode::kDataLoss:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

RetryPolicy::RetryPolicy(Site site, RetryOptions options)
    : site_(site), options_(options) {}

Status RetryPolicy::Run(const std::function<Status()>& op, int* attempts_out) {
  const SiteInstruments& inst = InstrumentsFor(site_);
  const auto start = std::chrono::steady_clock::now();
  const bool has_deadline = options_.deadline.count() > 0;
  std::chrono::microseconds backoff = options_.initial_backoff;
  Status status;
  int attempts = 0;
  std::optional<trace::Span> retry_span;
  for (;;) {
    ++attempts;
    inst.attempts->Increment();
    status = op();
    if (status.ok() || !IsRetryable(status.code())) break;
    if (attempts >= std::max(1, options_.max_attempts)) {
      inst.giveups->Increment();
      g_total_giveups.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    auto sleep = backoff;
    if (has_deadline) {
      auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
          options_.deadline - (std::chrono::steady_clock::now() - start));
      if (remaining.count() <= 0) {
        inst.giveups->Increment();
        g_total_giveups.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      sleep = std::min(sleep, remaining);
    }
    if (!retry_span) {
      // The span brackets the whole retry tail, opened only once an actual
      // retry happens so fault-free runs trace nothing extra.
      retry_span.emplace("retry:" + std::string(SiteName(site_)));
    }
    inst.retries->Increment();
    g_total_retries.fetch_add(1, std::memory_order_relaxed);
    ++t_thread_retries;
    std::this_thread::sleep_for(sleep);
    inst.sleep_seconds->Increment(
        std::chrono::duration<double>(sleep).count());
    backoff = std::min(
        std::chrono::microseconds(static_cast<int64_t>(
            static_cast<double>(backoff.count()) * options_.backoff_multiplier)),
        options_.max_backoff);
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return status;
}

int64_t TotalRetries() {
  return g_total_retries.load(std::memory_order_relaxed);
}

int64_t TotalGiveups() {
  return g_total_giveups.load(std::memory_order_relaxed);
}

int64_t ThreadRetries() { return t_thread_retries; }

int64_t ThreadDegraded() { return t_thread_degraded; }

void NoteDegraded(int64_t count) { t_thread_degraded += count; }

}  // namespace visualroad::fault
