#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace visualroad::metrics {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<int64_t>[upper_bounds_.size() + 1]) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket = upper_bounds_.size();  // The implicit +Inf bucket.
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int64_t Histogram::CumulativeCount(size_t bucket) const {
  int64_t total = 0;
  for (size_t i = 0; i <= bucket && i <= upper_bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments are referenced from worker threads that
  // may outlive static destruction order (same rationale as the codec pool).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    Type type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  }
  assert(it->second.type == type && "metric re-registered with another type");
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, Type::kCounter);
  auto [it, inserted] = family.counters.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, Type::kGauge);
  auto [it, inserted] = family.gauges.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::vector<double>& upper_bounds,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, Type::kHistogram);
  auto [it, inserted] = family.histograms.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Histogram>(upper_bounds);
  return *it->second;
}

std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::rint(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                  static_cast<int64_t>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

namespace {

/// `le` bound rendering: Prometheus uses "+Inf" for the overflow bucket.
std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return FormatMetricValue(bound);
}

/// Joins a family's label body with an extra `le` pair for bucket lines.
std::string JoinLabels(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  if (extra.empty()) return labels;
  return labels + "," + extra;
}

void EmitSample(std::ostringstream& out, const std::string& name,
                const std::string& labels, double value) {
  out << name;
  if (!labels.empty()) out << "{" << labels << "}";
  out << " " << FormatMetricValue(value) << "\n";
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    out << "# HELP " << name << " " << family.help << "\n";
    switch (family.type) {
      case Type::kCounter:
        out << "# TYPE " << name << " counter\n";
        for (const auto& [labels, counter] : family.counters) {
          EmitSample(out, name, labels, counter->Value());
        }
        break;
      case Type::kGauge:
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          EmitSample(out, name, labels, gauge->Value());
        }
        break;
      case Type::kHistogram:
        out << "# TYPE " << name << " histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          const std::vector<double>& bounds = histogram->upper_bounds();
          for (size_t i = 0; i <= bounds.size(); ++i) {
            double bound = i < bounds.size()
                               ? bounds[i]
                               : std::numeric_limits<double>::infinity();
            EmitSample(out, name + "_bucket",
                       JoinLabels(labels, "le=\"" + FormatBound(bound) + "\""),
                       static_cast<double>(histogram->CumulativeCount(i)));
          }
          EmitSample(out, name + "_sum", labels, histogram->Sum());
          EmitSample(out, name + "_count", labels,
                     static_cast<double>(histogram->TotalCount()));
        }
        break;
    }
  }
  return out.str();
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

}  // namespace visualroad::metrics
