#include "common/geometry.h"

namespace visualroad {

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      r.m[i][j] = m[i][0] * o.m[0][j] + m[i][1] * o.m[1][j] + m[i][2] * o.m[2][j];
    }
  }
  return r;
}

Mat3 Mat3::Transposed() const {
  Mat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
  }
  return r;
}

Mat3 Mat3::RotationZ(double radians) {
  double c = std::cos(radians), s = std::sin(radians);
  Mat3 r;
  r.m[0][0] = c;
  r.m[0][1] = -s;
  r.m[1][0] = s;
  r.m[1][1] = c;
  return r;
}

Mat3 Mat3::RotationX(double radians) {
  double c = std::cos(radians), s = std::sin(radians);
  Mat3 r;
  r.m[1][1] = c;
  r.m[1][2] = -s;
  r.m[2][1] = s;
  r.m[2][2] = c;
  return r;
}

double IoU(const RectI& a, const RectI& b) {
  int64_t inter = a.Intersect(b).Area();
  if (inter == 0) return 0.0;
  int64_t uni = a.Area() + b.Area() - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

double JaccardDistance(const RectI& a, const RectI& b) { return 1.0 - IoU(a, b); }

double WrapAngle(double radians) {
  while (radians > kPi) radians -= 2.0 * kPi;
  while (radians <= -kPi) radians += 2.0 * kPi;
  return radians;
}

}  // namespace visualroad
