#ifndef VISUALROAD_COMMON_SERIALIZE_H_
#define VISUALROAD_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace visualroad {

/// Little-endian byte writer for on-disk metadata records.
class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  std::vector<uint8_t> Take() { return std::move(bytes_); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian reader matching ByteWriter. After any failed
/// read, ok() is false and subsequent reads return zero values.
class ByteCursor {
 public:
  ByteCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteCursor(const std::vector<uint8_t>& data)
      : ByteCursor(data.data(), data.size()) {}

  uint8_t U8() {
    if (!Require(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = data_[pos_] | (data_[pos_ + 1] << 8) | (data_[pos_ + 2] << 16) |
                 (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  uint64_t U64() {
    uint64_t lo = U32();
    uint64_t hi = U32();
    return lo | (hi << 32);
  }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Require(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ >= size_; }

 private:
  bool Require(size_t n) {
    if (!ok_ || pos_ + n > size_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_SERIALIZE_H_
