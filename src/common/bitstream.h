#ifndef VISUALROAD_COMMON_BITSTREAM_H_
#define VISUALROAD_COMMON_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace visualroad {

/// MSB-first bit writer used by the VRC codec's header and Golomb paths.
class BitWriter {
 public:
  /// Appends the low `count` bits of `bits` (MSB first). count <= 57.
  void WriteBits(uint64_t bits, int count);
  /// Appends one bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }
  /// Unsigned exponential-Golomb code (order 0), as in H.264 headers.
  void WriteUe(uint32_t value);
  /// Signed exponential-Golomb code.
  void WriteSe(int32_t value);
  /// Pads to a byte boundary with zero bits and returns the buffer.
  std::vector<uint8_t> Finish();

  size_t BitCount() const { return buffer_.size() * 8 + bit_pos_; }

 private:
  std::vector<uint8_t> buffer_;
  uint8_t current_ = 0;
  int bit_pos_ = 0;  // Bits already written into `current_`.
};

/// MSB-first bit reader matching BitWriter.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BitReader(const std::vector<uint8_t>& data)
      : BitReader(data.data(), data.size()) {}

  /// Reads `count` bits (MSB first). Returns 0 bits past the end. count <= 57.
  uint64_t ReadBits(int count);
  bool ReadBit() { return ReadBits(1) != 0; }
  uint32_t ReadUe();
  int32_t ReadSe();

  /// True if every bit has been consumed (ignoring byte padding).
  bool Exhausted() const { return byte_pos_ >= size_; }
  size_t BitPosition() const { return byte_pos_ * 8 + bit_pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_BITSTREAM_H_
