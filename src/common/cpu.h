#ifndef VISUALROAD_COMMON_CPU_H_
#define VISUALROAD_COMMON_CPU_H_

#include <string>

namespace visualroad {

/// SIMD instruction-set tiers the kernel layer dispatches between. Levels are
/// ordered: a CPU that supports a level supports every lower one, and the
/// dispatcher picks the widest supported level unless pinned down by the
/// VR_SIMD environment variable (or a scalar-only build).
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Widest SIMD level this CPU supports, probed once via CPUID. On non-x86
/// targets (and scalar-only builds) this is kScalar.
SimdLevel DetectedSimdLevel();

/// Parses "scalar" / "sse2" / "avx2" (case-insensitive). Returns false and
/// leaves `out` untouched on anything else.
bool ParseSimdLevel(const std::string& text, SimdLevel* out);

/// Lower-case level name ("scalar", "sse2", "avx2").
const char* SimdLevelName(SimdLevel level);

/// The level requested by the environment: VR_SIMD=scalar|sse2|avx2, clamped
/// to DetectedSimdLevel() so a pin can only narrow, never widen. Unset or
/// unparseable VR_SIMD yields DetectedSimdLevel(). Scalar-only builds
/// (VISUALROAD_FORCE_SCALAR_KERNELS) always yield kScalar.
SimdLevel RequestedSimdLevel();

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_CPU_H_
