#ifndef VISUALROAD_COMMON_METRICS_H_
#define VISUALROAD_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace visualroad::metrics {

/// A monotonically increasing value (Prometheus counter). Doubles are exact
/// for integer counts below 2^53, which lets one type carry both event counts
/// and accumulated seconds. All operations are lock-free atomics, safe to
/// call from any thread.
class Counter {
 public:
  void Increment(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A value that can move in both directions (Prometheus gauge): bytes in
/// use, entries resident, queue high-water marks (via SetMax).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is higher (high-water-mark semantics).
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket cumulative histogram (Prometheus histogram). Bucket upper
/// bounds are set at registration and never change; Observe() is a short
/// linear scan plus relaxed atomics, cheap enough for per-query (not
/// per-pixel) events.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Cumulative count of observations <= upper_bounds()[i].
  int64_t CumulativeCount(size_t bucket) const;
  int64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> upper_bounds_;  // Ascending; implicit +Inf at the end.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // Per-bucket (non-cumulative).
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A process-wide registry of named instruments with Prometheus text export.
/// Get* calls are get-or-create: the first call for a (name, labels) pair
/// registers the instrument, later calls return the same instance, so call
/// sites cache the reference and pay only the atomic update afterwards.
/// Every metric name and label in the Global() registry is documented in
/// docs/OBSERVABILITY.md; a registry/docs sync test enforces the listing.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  /// `labels` is a preformatted Prometheus label body without braces, e.g.
  /// `pool="codec"`; empty means no labels. The same name may carry several
  /// label sets (one instrument each) but only one type and help string.
  Counter& GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  /// `upper_bounds` must be ascending; it is fixed by the first registration
  /// of `name` and ignored on later calls.
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& upper_bounds,
                          const std::string& labels = "");

  /// Prometheus text exposition (HELP/TYPE comments, one line per sample,
  /// families and label sets in lexicographic order — deterministic, so the
  /// export is testable against a golden string).
  std::string PrometheusText() const;

  /// Sorted family names (base metric names, without label sets or the
  /// _bucket/_sum/_count suffixes). The docs-sync test walks this list.
  std::vector<std::string> MetricNames() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    // Keyed by label body; std::map keeps export order deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family& FamilyFor(const std::string& name, const std::string& help, Type type);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Renders a sample value the way the exporter does: integers without a
/// decimal point, everything else with enough digits to round-trip.
std::string FormatMetricValue(double value);

}  // namespace visualroad::metrics

#endif  // VISUALROAD_COMMON_METRICS_H_
