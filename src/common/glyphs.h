#ifndef VISUALROAD_COMMON_GLYPHS_H_
#define VISUALROAD_COMMON_GLYPHS_H_

#include <cstdint>

namespace visualroad {

/// Width and height of the built-in bitmap font.
inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;

/// Returns the 5x7 bitmap for an ASCII character as 7 row bytes (low 5 bits
/// used, MSB of those 5 is the leftmost column). Characters outside
/// [A-Z0-9 .:-] render as a filled block; lowercase is folded to uppercase.
/// The same glyphs are rasterised onto license plates by the simulator and
/// template-matched by the ALPR recogniser, so recognition is a genuine
/// pixel-domain task.
const uint8_t* GlyphRows(char c);

/// True if the glyph bitmap for `c` has the pixel at (x, y) set.
bool GlyphPixel(char c, int x, int y);

}  // namespace visualroad

#endif  // VISUALROAD_COMMON_GLYPHS_H_
