#include "common/cpu.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace visualroad {

namespace {

SimdLevel ProbeCpu() {
#if defined(VISUALROAD_FORCE_SCALAR_KERNELS)
  return SimdLevel::kScalar;
#elif defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = ProbeCpu();
  return level;
}

bool ParseSimdLevel(const std::string& text, SimdLevel* out) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "scalar") {
    *out = SimdLevel::kScalar;
  } else if (lower == "sse2") {
    *out = SimdLevel::kSse2;
  } else if (lower == "avx2") {
    *out = SimdLevel::kAvx2;
  } else {
    return false;
  }
  return true;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel RequestedSimdLevel() {
  SimdLevel detected = DetectedSimdLevel();
  const char* env = std::getenv("VR_SIMD");
  if (env == nullptr || env[0] == '\0') return detected;
  SimdLevel requested;
  if (!ParseSimdLevel(env, &requested)) return detected;
  return std::min(requested, detected);
}

}  // namespace visualroad
