#include "storage/vss_policy.h"

#include <algorithm>
#include <limits>

namespace visualroad::storage {

std::string VariantTag(const VariantKey& key) {
  std::string tag = std::to_string(key.width) + "x" + std::to_string(key.height);
  return tag + (key.qp == 0 ? "_base" : "_qp" + std::to_string(key.qp));
}

bool Serves(const VariantInfo& v, const VariantKey& want) {
  if (v.key.width != want.width || v.key.height != want.height) return false;
  if (want.qp == 0) return v.base;  // The base bitstream itself.
  return v.base || v.key.qp <= want.qp;
}

bool CanTranscode(const VariantInfo& source, const VariantKey& want) {
  if (want.qp == 0) return false;  // The base bitstream cannot be recreated.
  if (want.width <= 0 || want.height <= 0) return false;
  if (source.key.width < want.width || source.key.height < want.height) {
    return false;  // Never upscale: the result would fake detail.
  }
  return source.base || source.key.qp <= want.qp;
}

double ServeCost(const VariantInfo& source, const VariantKey& want,
                 int frame_count, const CostModel& model) {
  double read = static_cast<double>(source.bytes) * model.read_per_byte;
  if (Serves(source, want)) return read;
  if (!CanTranscode(source, want)) {
    return std::numeric_limits<double>::infinity();
  }
  double src_pixels = static_cast<double>(source.key.width) * source.key.height;
  double dst_pixels = static_cast<double>(want.width) * want.height;
  return read + frame_count * (src_pixels * model.decode_per_pixel +
                               dst_pixels * model.encode_per_pixel);
}

const VariantInfo* ChooseSource(const CatalogEntry& video, const VariantKey& want,
                                const CostModel& model) {
  const VariantInfo* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [key, variant] : video.variants) {
    double cost = ServeCost(variant, want, video.frame_count, model);
    if (cost < best_cost) {
      best = &variant;
      best_cost = cost;
    }
  }
  return best;
}

bool Dominates(const VariantInfo& b, const VariantInfo& a, double byte_slack) {
  if (a.base || &a == &b || a.key == b.key) return false;
  if (b.key.width != a.key.width || b.key.height != a.key.height) return false;
  if (!b.base && b.key.qp > a.key.qp) return false;
  return static_cast<double>(b.bytes) <=
         byte_slack * static_cast<double>(a.bytes);
}

std::vector<VariantKey> CompactionVictims(const CatalogEntry& video,
                                          double byte_slack) {
  std::vector<VariantKey> victims;
  for (const auto& [a_key, a] : video.variants) {
    for (const auto& [b_key, b] : video.variants) {
      // On mutual domination keep the lexicographically smaller key, so one
      // of the pair always survives.
      if (Dominates(b, a, byte_slack) &&
          !(Dominates(a, b, byte_slack) && a_key < b_key)) {
        victims.push_back(a_key);
        break;
      }
    }
  }
  return victims;
}

std::vector<std::pair<std::string, VariantKey>> EvictionVictims(
    const std::map<std::string, CatalogEntry>& catalog, int64_t budget_bytes,
    const std::set<std::pair<std::string, VariantKey>>& pinned) {
  struct Candidate {
    uint64_t last_use;
    int64_t bytes;
    std::pair<std::string, VariantKey> id;
  };
  std::vector<Candidate> cached;
  int64_t cached_bytes = 0;
  for (const auto& [name, entry] : catalog) {
    for (const auto& [key, variant] : entry.variants) {
      if (variant.base) continue;
      cached_bytes += variant.bytes;
      cached.push_back({variant.last_use, variant.bytes, {name, key}});
    }
  }
  std::sort(cached.begin(), cached.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_use < b.last_use;
            });
  std::vector<std::pair<std::string, VariantKey>> victims;
  for (const Candidate& candidate : cached) {
    if (cached_bytes <= budget_bytes) break;
    if (pinned.count(candidate.id)) continue;
    victims.push_back(candidate.id);
    cached_bytes -= candidate.bytes;
  }
  return victims;
}

}  // namespace visualroad::storage
