#include "storage/sharded_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/serialize.h"

namespace visualroad::storage {

namespace fs = std::filesystem;

namespace {

Status WriteFileBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  if (size > 0) {
    file.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !file.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("read failed: " + path);
  }
  return bytes;
}

/// Reads [offset, offset + length) of a replica file whose total size must
/// be `expected_size` (a short file means a torn or foreign replica).
Status ReadFileSlice(const std::string& path, int64_t expected_size,
                     int64_t offset, int64_t length, uint8_t* out) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  if (static_cast<int64_t>(file.tellg()) != expected_size) {
    return Status::DataLoss("replica size mismatch: " + path);
  }
  file.seekg(offset);
  if (length > 0 &&
      !file.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(length))) {
    return Status::IoError("read failed: " + path);
  }
  return Status::Ok();
}

}  // namespace

ShardedStore::ShardedStore(StoreOptions options)
    : options_(std::move(options)),
      stats_(std::make_unique<AtomicStats>()),
      mutex_(std::make_unique<std::shared_mutex>()) {
  auto& registry = metrics::MetricsRegistry::Global();
  const std::string labels = "store=\"" + options_.metrics_label + "\"";
  instruments_.blocks_written =
      &registry.GetCounter("vr_store_blocks_written_total",
                           "Replicated blocks written to datanodes.", labels);
  instruments_.blocks_read = &registry.GetCounter(
      "vr_store_blocks_read_total", "Blocks (or block slices) read.", labels);
  instruments_.bytes_written = &registry.GetCounter(
      "vr_store_bytes_written_total",
      "Physical bytes written, replication included.", labels);
  instruments_.bytes_read = &registry.GetCounter(
      "vr_store_bytes_read_total", "Bytes delivered to readers.", labels);
  instruments_.replica_failovers = &registry.GetCounter(
      "vr_store_replica_failovers_total",
      "Replicas skipped (down or unreadable) during block reads.", labels);
  instruments_.partial_reads = &registry.GetCounter(
      "vr_store_partial_reads_total",
      "Range reads that touched a strict subset of a file's blocks.", labels);
  instruments_.read_retries = &registry.GetCounter(
      "vr_store_read_retries_total",
      "Block-read attempts beyond the first (transient failure, retried).",
      labels);
  instruments_.write_replacements = &registry.GetCounter(
      "vr_store_write_replacements_total",
      "Replica writes that failed mid-block and were re-placed.", labels);
  instruments_.bytes_reclaimed = &registry.GetCounter(
      "vr_store_bytes_reclaimed_total",
      "Physical bytes reclaimed by dropping replicas.", labels);
  instruments_.bytes_stored = &registry.GetGauge(
      "vr_store_bytes_stored",
      "Physical bytes currently stored, replication included.", labels);
}

StatusOr<ShardedStore> ShardedStore::Open(const StoreOptions& options) {
  if (options.root.empty()) return Status::InvalidArgument("store root is empty");
  if (options.num_nodes < 1) return Status::InvalidArgument("need at least 1 node");
  if (options.block_size < 16) return Status::InvalidArgument("block size too small");
  StoreOptions normalized = options;
  normalized.replication = std::clamp(options.replication, 1, options.num_nodes);

  ShardedStore store(normalized);
  std::error_code ec;
  fs::create_directories(normalized.root, ec);
  for (int n = 0; n < normalized.num_nodes; ++n) {
    fs::create_directories(store.NodeDir(n), ec);
    if (ec) return Status::IoError("cannot create datanode dir: " + store.NodeDir(n));
  }
  if (fs::exists(store.ManifestPath())) {
    VR_RETURN_IF_ERROR(store.LoadManifestLocked());
  }
  return store;
}

std::string ShardedStore::NodeDir(int node) const {
  return options_.root + "/node" + std::to_string(node);
}

std::string ShardedStore::BlockPath(int node, uint64_t block_id) const {
  return NodeDir(node) + "/blk_" + std::to_string(block_id);
}

std::string ShardedStore::ManifestPath() const {
  return options_.root + "/manifest.vrsm";
}

// --- Writer --------------------------------------------------------------

ShardedStore::Writer::Writer(Writer&& other) noexcept
    : store_(other.store_),
      name_(std::move(other.name_)),
      pending_(std::move(other.pending_)),
      blocks_(std::move(other.blocks_)),
      size_(other.size_) {
  other.store_ = nullptr;
}

ShardedStore::Writer& ShardedStore::Writer::operator=(Writer&& other) noexcept {
  if (this != &other) {
    Abandon();
    store_ = other.store_;
    name_ = std::move(other.name_);
    pending_ = std::move(other.pending_);
    blocks_ = std::move(other.blocks_);
    size_ = other.size_;
    other.store_ = nullptr;
  }
  return *this;
}

ShardedStore::Writer::~Writer() { Abandon(); }

void ShardedStore::Writer::Abandon() {
  if (store_ == nullptr) return;
  store_->DropBlocks(blocks_);
  store_ = nullptr;
}

Status ShardedStore::Writer::Append(const uint8_t* data, size_t size) {
  if (store_ == nullptr) return Status::FailedPrecondition("writer is closed");
  const size_t block_size = static_cast<size_t>(store_->options_.block_size);
  size_t consumed = 0;
  while (consumed < size) {
    size_t take = std::min(block_size - pending_.size(), size - consumed);
    pending_.insert(pending_.end(), data + consumed, data + consumed + take);
    consumed += take;
    if (pending_.size() == block_size) {
      VR_ASSIGN_OR_RETURN(BlockPlacement block,
                          store_->WriteBlock(pending_.data(), pending_.size()));
      blocks_.push_back(std::move(block));
      pending_.clear();
    }
  }
  size_ += static_cast<int64_t>(size);
  return Status::Ok();
}

Status ShardedStore::Writer::Close() {
  if (store_ == nullptr) return Status::FailedPrecondition("writer is closed");
  if (!pending_.empty() || blocks_.empty()) {
    VR_ASSIGN_OR_RETURN(BlockPlacement block,
                        store_->WriteBlock(pending_.data(), pending_.size()));
    blocks_.push_back(std::move(block));
    pending_.clear();
  }
  FileEntry entry;
  entry.size = size_;
  entry.blocks = std::move(blocks_);
  ShardedStore* store = store_;
  store_ = nullptr;  // The file now owns the blocks, even if Install fails.
  return store->Install(name_, std::move(entry));
}

StatusOr<ShardedStore::Writer> ShardedStore::OpenWriter(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty file name");
  std::shared_lock lock(*mutex_);
  int available = options_.num_nodes - static_cast<int>(disabled_nodes_.size());
  if (available < 1) return Status::ResourceExhausted("no datanodes available");
  return Writer(this, name);
}

StatusOr<BlockPlacement> ShardedStore::WriteBlock(const uint8_t* data,
                                                  size_t size) {
  std::unique_lock lock(*mutex_);
  // Prune expired flap windows while we hold the exclusive lock anyway.
  const auto now = std::chrono::steady_clock::now();
  for (auto it = flapped_nodes_.begin(); it != flapped_nodes_.end();) {
    it = (it->second <= now) ? flapped_nodes_.erase(it) : std::next(it);
  }
  int available = 0;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (!NodeDownLocked(n)) ++available;
  }
  if (available < 1) return Status::ResourceExhausted("no datanodes available");
  int replication = std::min(options_.replication, available);

  BlockPlacement block;
  block.block_id = next_block_id_++;
  block.size = static_cast<int64_t>(size);
  // Round-robin placement over healthy nodes.
  while (static_cast<int>(block.replicas.size()) < replication) {
    int node = next_node_;
    next_node_ = (next_node_ + 1) % options_.num_nodes;
    if (NodeDownLocked(node)) continue;
    if (std::find(block.replicas.begin(), block.replicas.end(), node) !=
        block.replicas.end()) {
      continue;
    }
    block.replicas.push_back(node);
  }

  // Write each replica; a failed replica write (real, or an injected
  // kStoreWriteFail) re-places that replica on another healthy node rather
  // than failing the whole Put mid-block.
  auto write_replica = [&](int node) -> Status {
    if (options_.faults != nullptr &&
        options_.faults->ShouldInject(fault::Site::kStoreWriteFail)) {
      return Status::IoError("injected replica write failure on node " +
                             std::to_string(node));
    }
    return WriteFileBytes(BlockPath(node, block.block_id), data, size);
  };
  auto abort_block = [&](size_t written) {
    // Remove replicas written before the failure (plus any torn file at the
    // failed slot); nothing was accounted yet, so removal needs no stats.
    for (size_t r = 0; r <= written && r < block.replicas.size(); ++r) {
      std::error_code ec;
      fs::remove(BlockPath(block.replicas[r], block.block_id), ec);
    }
  };
  for (size_t i = 0; i < block.replicas.size(); ++i) {
    std::set<int> tried;
    Status write_status = write_replica(block.replicas[i]);
    tried.insert(block.replicas[i]);
    while (!write_status.ok()) {
      int replacement = -1;
      for (int probe = 0; probe < options_.num_nodes; ++probe) {
        int candidate = next_node_;
        next_node_ = (next_node_ + 1) % options_.num_nodes;
        if (NodeDownLocked(candidate) || tried.count(candidate) ||
            std::find(block.replicas.begin(), block.replicas.end(),
                      candidate) != block.replicas.end()) {
          continue;
        }
        replacement = candidate;
        break;
      }
      if (replacement < 0) {
        abort_block(i);
        return write_status;
      }
      block.replicas[i] = replacement;
      tried.insert(replacement);
      write_status = write_replica(replacement);
      if (write_status.ok()) {
        stats_->write_replacements.fetch_add(1, std::memory_order_relaxed);
        instruments_.write_replacements->Increment();
      }
    }
  }
  const int64_t physical =
      static_cast<int64_t>(size) * static_cast<int64_t>(block.replicas.size());
  stats_->blocks_written.fetch_add(1, std::memory_order_relaxed);
  stats_->bytes_written.fetch_add(physical, std::memory_order_relaxed);
  stats_->bytes_stored.fetch_add(physical, std::memory_order_relaxed);
  instruments_.blocks_written->Increment();
  instruments_.bytes_written->Increment(static_cast<double>(physical));
  instruments_.bytes_stored->Add(static_cast<double>(physical));
  return block;
}

Status ShardedStore::Install(const std::string& name, FileEntry entry) {
  std::unique_lock lock(*mutex_);
  auto it = files_.find(name);
  if (it != files_.end()) {
    DropBlocks(it->second.blocks);
    files_.erase(it);
  }
  files_[name] = std::move(entry);
  return SaveManifestLocked();
}

void ShardedStore::DropBlocks(const std::vector<BlockPlacement>& blocks) const {
  int64_t reclaimed = 0;
  for (const BlockPlacement& block : blocks) {
    for (int node : block.replicas) {
      std::error_code ec;
      if (fs::remove(BlockPath(node, block.block_id), ec) && !ec) {
        reclaimed += block.size;
      }
    }
  }
  if (reclaimed > 0) {
    stats_->bytes_stored.fetch_sub(reclaimed, std::memory_order_relaxed);
    stats_->bytes_reclaimed.fetch_add(reclaimed, std::memory_order_relaxed);
    instruments_.bytes_stored->Add(-static_cast<double>(reclaimed));
    instruments_.bytes_reclaimed->Increment(static_cast<double>(reclaimed));
  }
}

bool ShardedStore::NodeDownLocked(int node) const {
  if (disabled_nodes_.count(node)) return true;
  auto it = flapped_nodes_.find(node);
  return it != flapped_nodes_.end() &&
         it->second > std::chrono::steady_clock::now();
}

Status ShardedStore::Put(const std::string& name,
                         const std::vector<uint8_t>& bytes) {
  VR_ASSIGN_OR_RETURN(Writer writer, OpenWriter(name));
  VR_RETURN_IF_ERROR(writer.Append(bytes));
  return writer.Close();
}

// --- Read paths ----------------------------------------------------------

Status ShardedStore::ReadBlockSlice(const BlockPlacement& block,
                                    int64_t slice_offset, int64_t slice_length,
                                    uint8_t* out, const std::string& name) const {
  // One pass over the replicas: fail over on a down node, an injected
  // transient flap, or an unreadable file.
  auto read_once = [&]() -> Status {
    for (int node : block.replicas) {
      bool down = NodeDownLocked(node);
      if (!down && options_.faults != nullptr &&
          options_.faults->ShouldInject(fault::Site::kStoreReadFlap)) {
        down = true;  // Transient: the next attempt may see it healthy.
      }
      if (!down && options_.faults != nullptr) {
        options_.faults->MaybeDelay(fault::Site::kStoreSlowRead);
      }
      if (down ||
          !ReadFileSlice(BlockPath(node, block.block_id), block.size,
                         slice_offset, slice_length, out)
               .ok()) {
        stats_->replica_failovers.fetch_add(1, std::memory_order_relaxed);
        instruments_.replica_failovers->Increment();
        continue;
      }
      stats_->blocks_read.fetch_add(1, std::memory_order_relaxed);
      stats_->bytes_read.fetch_add(slice_length, std::memory_order_relaxed);
      instruments_.blocks_read->Increment();
      instruments_.bytes_read->Increment(static_cast<double>(slice_length));
      return Status::Ok();
    }
    return Status::DataLoss("all replicas unavailable for a block of " + name);
  };
  // Retry only when failures can actually heal (an injector is attached or
  // a flap window is active); permanently disabled nodes fail fast as
  // before. Note: retry sleeps run under the shared lock, which delays
  // writers but never other readers.
  if (options_.faults == nullptr && flapped_nodes_.empty()) return read_once();
  int attempts = 0;
  fault::RetryPolicy policy(fault::Site::kStoreReadFlap, options_.read_retry);
  Status status = policy.Run(read_once, &attempts);
  if (attempts > 1) {
    stats_->read_retries.fetch_add(attempts - 1, std::memory_order_relaxed);
    instruments_.read_retries->Increment(static_cast<double>(attempts - 1));
  }
  return status;
}

Status ShardedStore::Scan(
    const std::string& name,
    const std::function<Status(const uint8_t* data, size_t size)>& sink) const {
  std::shared_lock lock(*mutex_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  std::vector<uint8_t> buffer;
  for (const BlockPlacement& block : it->second.blocks) {
    buffer.resize(static_cast<size_t>(block.size));
    VR_RETURN_IF_ERROR(ReadBlockSlice(block, 0, block.size, buffer.data(), name));
    VR_RETURN_IF_ERROR(sink(buffer.data(), buffer.size()));
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ShardedStore::Get(const std::string& name) const {
  VR_ASSIGN_OR_RETURN(FileInfo info, Stat(name));
  std::vector<uint8_t> bytes;
  bytes.reserve(static_cast<size_t>(info.size));
  VR_RETURN_IF_ERROR(Scan(name, [&bytes](const uint8_t* data, size_t size) {
    bytes.insert(bytes.end(), data, data + size);
    return Status::Ok();
  }));
  return bytes;
}

StatusOr<std::vector<uint8_t>> ShardedStore::Read(const std::string& name,
                                                  int64_t offset,
                                                  int64_t length) const {
  if (offset < 0 || length < 0) return Status::OutOfRange("negative read range");
  std::shared_lock lock(*mutex_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  const FileEntry& entry = it->second;
  if (offset + length > entry.size) {
    return Status::OutOfRange("read past end of " + name);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(length));
  int64_t block_start = 0;
  int64_t out_pos = 0;
  size_t blocks_touched = 0;
  for (const BlockPlacement& block : entry.blocks) {
    int64_t block_end = block_start + block.size;
    int64_t slice_start = std::max(offset, block_start);
    int64_t slice_end = std::min(offset + length, block_end);
    if (slice_start < slice_end) {
      VR_RETURN_IF_ERROR(ReadBlockSlice(block, slice_start - block_start,
                                        slice_end - slice_start,
                                        bytes.data() + out_pos, name));
      out_pos += slice_end - slice_start;
      ++blocks_touched;
    }
    block_start = block_end;
    if (block_start >= offset + length) break;
  }
  if (blocks_touched < entry.blocks.size()) {
    stats_->partial_reads.fetch_add(1, std::memory_order_relaxed);
    instruments_.partial_reads->Increment();
  }
  return bytes;
}

// --- Catalog operations --------------------------------------------------

Status ShardedStore::Delete(const std::string& name) {
  std::unique_lock lock(*mutex_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::Ok();
  DropBlocks(it->second.blocks);
  files_.erase(it);
  return SaveManifestLocked();
}

std::vector<std::string> ShardedStore::List() const {
  std::shared_lock lock(*mutex_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, entry] : files_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

std::vector<int64_t> ShardedStore::NodeBytesForPrefix(
    const std::string& prefix) const {
  std::shared_lock lock(*mutex_);
  std::vector<int64_t> bytes(options_.num_nodes, 0);
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    for (const BlockPlacement& block : it->second.blocks) {
      for (int replica : block.replicas) {
        if (replica >= 0 && replica < options_.num_nodes) {
          bytes[replica] += block.size;
        }
      }
    }
  }
  return bytes;
}

StatusOr<ShardedStore::FileInfo> ShardedStore::Stat(const std::string& name) const {
  std::shared_lock lock(*mutex_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return FileInfo{it->second.size, static_cast<int>(it->second.blocks.size())};
}

Status ShardedStore::DisableNode(int node) {
  if (node < 0 || node >= options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  std::unique_lock lock(*mutex_);
  disabled_nodes_.insert(node);
  return Status::Ok();
}

Status ShardedStore::EnableNode(int node) {
  if (node < 0 || node >= options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  std::unique_lock lock(*mutex_);
  disabled_nodes_.erase(node);
  flapped_nodes_.erase(node);
  return Status::Ok();
}

Status ShardedStore::FailDatanode(int node, std::chrono::milliseconds duration) {
  if (node < 0 || node >= options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  if (duration.count() <= 0) {
    return Status::InvalidArgument("flap duration must be positive");
  }
  std::unique_lock lock(*mutex_);
  const auto now = std::chrono::steady_clock::now();
  for (auto it = flapped_nodes_.begin(); it != flapped_nodes_.end();) {
    it = (it->second <= now) ? flapped_nodes_.erase(it) : std::next(it);
  }
  auto expiry = now + duration;
  auto [it, inserted] = flapped_nodes_.emplace(node, expiry);
  if (!inserted && expiry > it->second) it->second = expiry;
  return Status::Ok();
}

StoreStats ShardedStore::stats() const {
  StoreStats out;
  out.blocks_written = stats_->blocks_written.load(std::memory_order_relaxed);
  out.blocks_read = stats_->blocks_read.load(std::memory_order_relaxed);
  out.bytes_written = stats_->bytes_written.load(std::memory_order_relaxed);
  out.bytes_read = stats_->bytes_read.load(std::memory_order_relaxed);
  out.replica_failovers =
      stats_->replica_failovers.load(std::memory_order_relaxed);
  out.partial_reads = stats_->partial_reads.load(std::memory_order_relaxed);
  out.read_retries = stats_->read_retries.load(std::memory_order_relaxed);
  out.write_replacements =
      stats_->write_replacements.load(std::memory_order_relaxed);
  out.bytes_stored = stats_->bytes_stored.load(std::memory_order_relaxed);
  out.bytes_reclaimed = stats_->bytes_reclaimed.load(std::memory_order_relaxed);
  return out;
}

// --- Manifest ------------------------------------------------------------

Status ShardedStore::SaveManifestLocked() const {
  ByteWriter writer;
  writer.U32(0x5652534D);  // "VRSM".
  writer.U64(next_block_id_);
  writer.U32(static_cast<uint32_t>(files_.size()));
  for (const auto& [name, entry] : files_) {
    writer.Str(name);
    writer.U64(static_cast<uint64_t>(entry.size));
    writer.U32(static_cast<uint32_t>(entry.blocks.size()));
    for (const BlockPlacement& block : entry.blocks) {
      writer.U64(block.block_id);
      writer.U64(static_cast<uint64_t>(block.size));
      writer.U32(static_cast<uint32_t>(block.replicas.size()));
      for (int node : block.replicas) writer.U32(static_cast<uint32_t>(node));
    }
  }
  const std::vector<uint8_t>& bytes = writer.bytes();
  return WriteFileBytes(ManifestPath(), bytes.data(), bytes.size());
}

Status ShardedStore::LoadManifestLocked() {
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(ManifestPath()));
  ByteCursor cursor(bytes);
  if (cursor.U32() != 0x5652534D) {
    return Status::DataLoss("bad manifest magic");
  }
  next_block_id_ = cursor.U64();
  uint32_t file_count = cursor.U32();
  files_.clear();
  for (uint32_t f = 0; f < file_count; ++f) {
    std::string name = cursor.Str();
    FileEntry entry;
    entry.size = static_cast<int64_t>(cursor.U64());
    uint32_t block_count = cursor.U32();
    for (uint32_t b = 0; b < block_count; ++b) {
      BlockPlacement block;
      block.block_id = cursor.U64();
      block.size = static_cast<int64_t>(cursor.U64());
      uint32_t replica_count = cursor.U32();
      for (uint32_t r = 0; r < replica_count; ++r) {
        block.replicas.push_back(static_cast<int>(cursor.U32()));
      }
      entry.blocks.push_back(std::move(block));
    }
    if (!cursor.ok()) return Status::DataLoss("truncated manifest");
    files_[name] = std::move(entry);
  }
  return Status::Ok();
}

}  // namespace visualroad::storage
