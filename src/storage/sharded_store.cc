#include "storage/sharded_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/serialize.h"

namespace visualroad::storage {

namespace fs = std::filesystem;

namespace {

Status WriteFileBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !file.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("read failed: " + path);
  }
  return bytes;
}

}  // namespace

StatusOr<ShardedStore> ShardedStore::Open(const StoreOptions& options) {
  if (options.root.empty()) return Status::InvalidArgument("store root is empty");
  if (options.num_nodes < 1) return Status::InvalidArgument("need at least 1 node");
  if (options.block_size < 16) return Status::InvalidArgument("block size too small");
  StoreOptions normalized = options;
  normalized.replication = std::clamp(options.replication, 1, options.num_nodes);

  ShardedStore store(normalized);
  std::error_code ec;
  fs::create_directories(normalized.root, ec);
  for (int n = 0; n < normalized.num_nodes; ++n) {
    fs::create_directories(store.NodeDir(n), ec);
    if (ec) return Status::IoError("cannot create datanode dir: " + store.NodeDir(n));
  }
  if (fs::exists(store.ManifestPath())) {
    VR_RETURN_IF_ERROR(store.LoadManifest());
  }
  return store;
}

std::string ShardedStore::NodeDir(int node) const {
  return options_.root + "/node" + std::to_string(node);
}

std::string ShardedStore::BlockPath(int node, uint64_t block_id) const {
  return NodeDir(node) + "/blk_" + std::to_string(block_id);
}

std::string ShardedStore::ManifestPath() const {
  return options_.root + "/manifest.vrsm";
}

Status ShardedStore::Put(const std::string& name,
                         const std::vector<uint8_t>& bytes) {
  if (name.empty()) return Status::InvalidArgument("empty file name");
  int available = options_.num_nodes - static_cast<int>(disabled_nodes_.size());
  if (available < 1) return Status::ResourceExhausted("no datanodes available");
  int replication = std::min(options_.replication, available);

  VR_RETURN_IF_ERROR(Delete(name));  // Overwrite semantics; ok if absent.

  FileEntry entry;
  entry.size = static_cast<int64_t>(bytes.size());
  size_t offset = 0;
  do {
    size_t take = std::min(static_cast<size_t>(options_.block_size),
                           bytes.size() - offset);
    BlockPlacement block;
    block.block_id = next_block_id_++;
    block.size = static_cast<int64_t>(take);
    // Round-robin placement over healthy nodes.
    while (static_cast<int>(block.replicas.size()) < replication) {
      int node = next_node_;
      next_node_ = (next_node_ + 1) % options_.num_nodes;
      if (disabled_nodes_.count(node)) continue;
      if (std::find(block.replicas.begin(), block.replicas.end(), node) !=
          block.replicas.end()) {
        continue;
      }
      block.replicas.push_back(node);
    }
    for (int node : block.replicas) {
      VR_RETURN_IF_ERROR(WriteFileBytes(BlockPath(node, block.block_id),
                                        bytes.data() + offset, take));
    }
    offset += take;
    entry.blocks.push_back(std::move(block));
  } while (offset < bytes.size());

  files_[name] = std::move(entry);
  return SaveManifest();
}

StatusOr<std::vector<uint8_t>> ShardedStore::Get(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  std::vector<uint8_t> bytes;
  bytes.reserve(static_cast<size_t>(it->second.size));
  for (const BlockPlacement& block : it->second.blocks) {
    bool read_ok = false;
    for (int node : block.replicas) {
      if (disabled_nodes_.count(node)) continue;
      auto chunk = ReadFileBytes(BlockPath(node, block.block_id));
      if (chunk.ok() && static_cast<int64_t>(chunk->size()) == block.size) {
        bytes.insert(bytes.end(), chunk->begin(), chunk->end());
        read_ok = true;
        break;
      }
    }
    if (!read_ok) {
      return Status::DataLoss("all replicas unavailable for a block of " + name);
    }
  }
  return bytes;
}

Status ShardedStore::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::Ok();
  for (const BlockPlacement& block : it->second.blocks) {
    for (int node : block.replicas) {
      std::error_code ec;
      fs::remove(BlockPath(node, block.block_id), ec);
    }
  }
  files_.erase(it);
  return SaveManifest();
}

std::vector<std::string> ShardedStore::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, entry] : files_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

StatusOr<ShardedStore::FileInfo> ShardedStore::Stat(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return FileInfo{it->second.size, static_cast<int>(it->second.blocks.size())};
}

Status ShardedStore::DisableNode(int node) {
  if (node < 0 || node >= options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  disabled_nodes_.insert(node);
  return Status::Ok();
}

Status ShardedStore::EnableNode(int node) {
  if (node < 0 || node >= options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  disabled_nodes_.erase(node);
  return Status::Ok();
}

Status ShardedStore::SaveManifest() const {
  ByteWriter writer;
  writer.U32(0x5652534D);  // "VRSM".
  writer.U64(next_block_id_);
  writer.U32(static_cast<uint32_t>(files_.size()));
  for (const auto& [name, entry] : files_) {
    writer.Str(name);
    writer.U64(static_cast<uint64_t>(entry.size));
    writer.U32(static_cast<uint32_t>(entry.blocks.size()));
    for (const BlockPlacement& block : entry.blocks) {
      writer.U64(block.block_id);
      writer.U64(static_cast<uint64_t>(block.size));
      writer.U32(static_cast<uint32_t>(block.replicas.size()));
      for (int node : block.replicas) writer.U32(static_cast<uint32_t>(node));
    }
  }
  const std::vector<uint8_t>& bytes = writer.bytes();
  return WriteFileBytes(ManifestPath(), bytes.data(), bytes.size());
}

Status ShardedStore::LoadManifest() {
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(ManifestPath()));
  ByteCursor cursor(bytes);
  if (cursor.U32() != 0x5652534D) {
    return Status::DataLoss("bad manifest magic");
  }
  next_block_id_ = cursor.U64();
  uint32_t file_count = cursor.U32();
  files_.clear();
  for (uint32_t f = 0; f < file_count; ++f) {
    std::string name = cursor.Str();
    FileEntry entry;
    entry.size = static_cast<int64_t>(cursor.U64());
    uint32_t block_count = cursor.U32();
    for (uint32_t b = 0; b < block_count; ++b) {
      BlockPlacement block;
      block.block_id = cursor.U64();
      block.size = static_cast<int64_t>(cursor.U64());
      uint32_t replica_count = cursor.U32();
      for (uint32_t r = 0; r < replica_count; ++r) {
        block.replicas.push_back(static_cast<int>(cursor.U32()));
      }
      entry.blocks.push_back(std::move(block));
    }
    if (!cursor.ok()) return Status::DataLoss("truncated manifest");
    files_[name] = std::move(entry);
  }
  return Status::Ok();
}

}  // namespace visualroad::storage
