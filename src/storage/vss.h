#ifndef VISUALROAD_STORAGE_VSS_H_
#define VISUALROAD_STORAGE_VSS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "storage/sharded_store.h"
#include "storage/vss_policy.h"

namespace visualroad::storage {

/// Video Storage Service configuration.
struct VssOptions {
  /// Backing store for variant objects and the catalog. Borrowed; must
  /// outlive the service.
  ShardedStore* store = nullptr;
  /// Byte budget for persisted transcoded variants (base variants are not
  /// budgeted). 0 disables caching transcode results entirely.
  int64_t variant_cache_bytes = int64_t{256} << 20;
  /// Byte budget for assembled bitstreams kept resident in memory across
  /// reads (encoded bytes, typically ~1% of the decoded-GOP cache).
  int64_t resident_bytes = int64_t{128} << 20;
  /// Closed GOPs per stored segment; larger amortizes headers, smaller
  /// tightens range reads.
  int gops_per_segment = 1;
  /// Threads for transcode decode/encode on the shared codec pool;
  /// 0 selects the pool default.
  int transcode_threads = 0;
  /// Relative costs driving variant selection.
  CostModel cost_model;
  /// A cached variant is compacted away when another materialized variant
  /// of the same resolution and no worse quality is at most this factor
  /// larger (reads pay at most the factor in extra bytes, storage drops).
  double compaction_byte_slack = 1.25;
  /// Optional deterministic fault source (not owned); lets transcode-on-read
  /// observe injected stalls.
  fault::FaultInjector* faults = nullptr;
  /// Deadline for a transcode-on-read, measured from read start. Once past
  /// it, the read degrades: the already-fetched nearest better variant is
  /// served directly (no transcode), counted in vr_vss_degraded_reads_total.
  /// 0 disables the deadline, which keeps results byte-identical to a
  /// fault-free build.
  std::chrono::milliseconds transcode_deadline{0};
};

/// Cumulative service counters (mirrored into the metrics registry as
/// vr_vss_*; see docs/OBSERVABILITY.md).
struct VssStats {
  int64_t reads = 0;
  int64_t range_reads = 0;
  /// Reads answered from the ingested bitstream.
  int64_t base_hits = 0;
  /// Reads answered from a persisted transcoded variant.
  int64_t variant_hits = 0;
  /// Reads answered from the in-memory resident stream cache.
  int64_t resident_hits = 0;
  int64_t transcodes = 0;
  /// Readers that waited on another reader's in-flight transcode.
  int64_t transcode_coalesced = 0;
  int64_t variants_persisted = 0;
  int64_t variants_evicted = 0;
  int64_t variants_compacted = 0;
  int64_t segments_fetched = 0;
  /// Bytes fetched from the store (segment payloads).
  int64_t bytes_fetched = 0;
  /// Current bytes persisted across all variants, base included.
  int64_t bytes_stored = 0;
  int64_t resident_evictions = 0;
  /// Reads that blew the transcode deadline and were served the nearest
  /// materialized better variant directly instead of the requested tier.
  int64_t degraded_reads = 0;
};

/// A range read: `video` holds the GOP-aligned covering segments, and
/// `first_frame` is the index of video->frames[0] within the logical
/// stream (0 whenever the whole stream was returned).
struct RangeRead {
  std::shared_ptr<const video::codec::EncodedVideo> video;
  int first_frame = 0;
};

/// The tiered video storage layer (after VSS, Haynes et al.): each logical
/// video is backed by one or more physical variants (resolution/QP tiers)
/// persisted through the ShardedStore as GOP-aligned segments. Reads are
/// served by a cost-based policy — the cheapest materialized variant
/// answers directly; otherwise the service transcodes on read from the
/// nearest better variant and may persist the result as a new variant
/// under an LRU byte budget. Thread-safe; concurrent readers of a missing
/// variant coalesce onto one in-flight materialization (single-flight).
class VideoStorageService {
 public:
  static StatusOr<std::unique_ptr<VideoStorageService>> Open(
      const VssOptions& options);

  VideoStorageService(const VideoStorageService&) = delete;
  VideoStorageService& operator=(const VideoStorageService&) = delete;

  /// Stores `video` as logical video `name` (its base variant), segmented
  /// at closed-GOP boundaries. Replaces any previous `name`, dropping its
  /// transcoded variants.
  Status Ingest(const std::string& name, const video::codec::EncodedVideo& video);

  /// Whole-stream read at `tier`. The result is immutable and shared with
  /// the resident cache; the base tier returns the ingested bitstream
  /// byte-for-byte.
  StatusOr<std::shared_ptr<const video::codec::EncodedVideo>> ReadVideo(
      const std::string& name, const VariantKey& tier);

  /// Range read of frames [first, first+count): when a materialized
  /// variant serves `tier` and the stream is not resident, only the
  /// covering GOP-aligned segments are fetched from the store. A missing
  /// tier materializes the whole variant (single-flight) first.
  StatusOr<RangeRead> ReadRange(const std::string& name, const VariantKey& tier,
                                int first, int count);

  /// Deferred compaction: drops cached variants dominated by another
  /// materialized variant (same resolution, no worse quality, at most
  /// compaction_byte_slack times the bytes). Returns variants dropped.
  StatusOr<int> Compact();

  bool Contains(const std::string& name) const;
  std::vector<std::string> List() const;
  /// Catalog snapshot of one logical video (frame count, fps, tiers).
  StatusOr<CatalogEntry> Describe(const std::string& name) const;
  /// The tier holding `name`'s ingested bitstream.
  StatusOr<VariantKey> BaseTier(const std::string& name) const;

  /// Drops the in-memory resident streams (benchmarks measure cold reads
  /// this way); persisted variants are untouched.
  void DropResident();

  VssStats stats() const;
  const VssOptions& options() const { return options_; }

 private:
  struct ResidentEntry {
    std::shared_ptr<const video::codec::EncodedVideo> video;
    int64_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  /// Shared state of one in-flight materialization. Waiters hold the
  /// shared_ptr across the wait, so the leader's outcome (success, failure,
  /// or deadline degradation) reaches them even after the flight entry is
  /// erased — a failed leader propagates its Status instead of leaving
  /// waiters to silently re-lead.
  struct Flight {
    bool done = false;
    bool degraded = false;
    Status status;
  };

  explicit VideoStorageService(const VssOptions& options) : options_(options) {}

  static std::string ObjectName(const std::string& name, const VariantKey& key);

  Status LoadCatalog();
  /// Serializes and persists the catalog. Caller holds mutex_.
  Status SaveCatalogLocked();

  /// Fetches `seg_count` segments of a variant starting at `seg_first` in
  /// one partial store read and reassembles the bitstream. Runs without
  /// mutex_ held; the caller pins the variant. Adds the payload bytes
  /// fetched to *bytes_fetched.
  StatusOr<video::codec::EncodedVideo> FetchSegments(const CatalogEntry& props,
                                                     const VariantInfo& variant,
                                                     size_t seg_first,
                                                     size_t seg_count,
                                                     int64_t* bytes_fetched) const;

  /// Whole-stream acquisition with single-flight materialization; the core
  /// of ReadVideo and the fallback of ReadRange.
  StatusOr<std::shared_ptr<const video::codec::EncodedVideo>> AcquireStream(
      const std::string& name, const VariantKey& tier);

  /// Transcodes `source_video` to `tier` (scale + re-encode at tier.qp).
  StatusOr<video::codec::EncodedVideo> Transcode(
      const video::codec::EncodedVideo& source_video, const CatalogEntry& props,
      const VariantKey& tier) const;

  /// Writes a variant object for `stream` and returns its catalog record.
  /// Runs without mutex_ held (the single-flight marker excludes rivals).
  StatusOr<VariantInfo> WriteVariantObject(const std::string& name,
                                           const VariantKey& key,
                                           const video::codec::EncodedVideo& stream,
                                           bool base) const;

  // Resident-cache helpers; caller holds mutex_.
  void PublishResidentLocked(const std::string& rkey,
                             std::shared_ptr<const video::codec::EncodedVideo> video);
  void TouchResidentLocked(const std::string& rkey);
  void EvictResidentLocked();
  /// Applies the variant-cache byte budget; caller holds mutex_.
  void EvictVariantsLocked();

  std::set<std::pair<std::string, VariantKey>> PinnedLocked() const;

  /// Releases one pin on (name, key) and, when the last pin drops, executes
  /// any delete deferred while the variant was being read.
  void UnpinLocked(const std::string& name, const VariantKey& key);

  VssOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable inflight_cv_;
  std::map<std::string, CatalogEntry> catalog_;
  /// Streams being materialized, keyed (video, serving tier).
  std::map<std::pair<std::string, VariantKey>, std::shared_ptr<Flight>> inflight_;
  /// Variants a reader is currently fetching outside the lock; eviction
  /// and compaction skip them. Value is a fetch count.
  std::map<std::pair<std::string, VariantKey>, int> pins_;
  /// Stale variant objects whose delete was deferred because a reader still
  /// had the variant pinned (Ingest replaced the video mid-read). Executed
  /// by UnpinLocked when the last pin drops; cancelled when the same
  /// (name, key) is re-persisted (the store object was overwritten, so
  /// nothing stale remains).
  std::set<std::pair<std::string, VariantKey>> deferred_deletes_;
  std::map<std::string, ResidentEntry> resident_;
  std::list<std::string> resident_lru_;  // Front is least recently used.
  int64_t resident_bytes_ = 0;
  uint64_t use_clock_ = 0;
  VssStats stats_;
};

/// Store object name under which the driver stages a camera's bitstream.
std::string CameraStreamName(int camera_id);

}  // namespace visualroad::storage

#endif  // VISUALROAD_STORAGE_VSS_H_
