#include "storage/vss.h"

#include <algorithm>
#include <utility>

#include "common/serialize.h"
#include "common/trace.h"
#include "video/codec/gop_cache.h"
#include "video/image_ops.h"

namespace visualroad::storage {

namespace {

using video::codec::EncodedFrame;
using video::codec::EncodedVideo;

constexpr uint32_t kSegmentMagic = 0x31475356;  // "VSG1".
constexpr uint32_t kCatalogMagic = 0x53565256;  // "VRVS".
constexpr char kCatalogObject[] = "vss/catalog.vrvc";

/// Registry instruments, resolved once per process (see the GOP cache's
/// CacheMetrics for the pattern). Gauges are updated by delta so several
/// service instances sum correctly.
struct VssMetrics {
  metrics::Counter& reads;
  metrics::Counter& range_reads;
  metrics::Counter& base_hits;
  metrics::Counter& variant_hits;
  metrics::Counter& resident_hits;
  metrics::Counter& transcodes;
  metrics::Counter& transcode_coalesced;
  metrics::Counter& variants_persisted;
  metrics::Counter& variants_evicted;
  metrics::Counter& variants_compacted;
  metrics::Counter& segments_fetched;
  metrics::Counter& bytes_fetched;
  metrics::Counter& resident_evictions;
  metrics::Counter& degraded_reads;
  metrics::Gauge& bytes_stored;
  metrics::Gauge& resident_bytes;

  static VssMetrics& Get() {
    static VssMetrics* instruments = [] {
      auto& registry = metrics::MetricsRegistry::Global();
      return new VssMetrics{
          registry.GetCounter("vr_vss_reads_total",
                              "Whole-stream reads served by the VSS."),
          registry.GetCounter("vr_vss_range_reads_total",
                              "Frame-range reads served by the VSS."),
          registry.GetCounter("vr_vss_base_hits_total",
                              "Reads answered from the ingested bitstream."),
          registry.GetCounter(
              "vr_vss_variant_hits_total",
              "Reads answered from a persisted transcoded variant."),
          registry.GetCounter("vr_vss_resident_hits_total",
                              "Reads answered from the in-memory stream cache."),
          registry.GetCounter("vr_vss_transcodes_total",
                              "Transcode-on-read materializations."),
          registry.GetCounter(
              "vr_vss_transcode_coalesced_total",
              "Readers that waited on an in-flight materialization."),
          registry.GetCounter("vr_vss_variants_persisted_total",
                              "Transcode results persisted as new variants."),
          registry.GetCounter("vr_vss_variants_evicted_total",
                              "Cached variants evicted by the byte budget."),
          registry.GetCounter("vr_vss_variants_compacted_total",
                              "Dominated variants dropped by compaction."),
          registry.GetCounter("vr_vss_segments_fetched_total",
                              "GOP-aligned segments fetched from the store."),
          registry.GetCounter("vr_vss_bytes_fetched_total",
                              "Segment payload bytes fetched from the store."),
          registry.GetCounter("vr_vss_resident_evictions_total",
                              "Resident streams evicted by the byte budget."),
          registry.GetCounter(
              "vr_vss_degraded_reads_total",
              "Reads past the transcode deadline, served a better variant "
              "directly."),
          registry.GetGauge("vr_vss_bytes_stored",
                            "Bytes persisted across all variants, base included."),
          registry.GetGauge("vr_vss_resident_bytes",
                            "Encoded bytes of streams held resident in memory."),
      };
    }();
    return *instruments;
  }
};

/// One stored segment: header (magic, first frame, frame metadata) followed
/// by the concatenated frame payloads.
std::vector<uint8_t> SerializeSegment(const EncodedVideo& stream, int first,
                                      int count) {
  ByteWriter header;
  header.U32(kSegmentMagic);
  header.U32(static_cast<uint32_t>(first));
  header.U32(static_cast<uint32_t>(count));
  for (int i = first; i < first + count; ++i) {
    const EncodedFrame& frame = stream.frames[static_cast<size_t>(i)];
    header.U8(frame.keyframe ? 1 : 0);
    header.U8(frame.qp);
    header.U32(static_cast<uint32_t>(frame.data.size()));
  }
  std::vector<uint8_t> out = header.Take();
  for (int i = first; i < first + count; ++i) {
    const EncodedFrame& frame = stream.frames[static_cast<size_t>(i)];
    out.insert(out.end(), frame.data.begin(), frame.data.end());
  }
  return out;
}

/// Parses one segment slice back into frames appended to `out`.
Status ParseSegment(const uint8_t* data, size_t size, const SegmentInfo& seg,
                    std::vector<EncodedFrame>& out) {
  ByteCursor cursor(data, size);
  if (cursor.U32() != kSegmentMagic) return Status::DataLoss("bad segment magic");
  int first = static_cast<int>(cursor.U32());
  int count = static_cast<int>(cursor.U32());
  if (first != seg.first_frame || count != seg.frame_count) {
    return Status::DataLoss("segment header does not match the manifest");
  }
  std::vector<EncodedFrame> frames(static_cast<size_t>(count));
  std::vector<size_t> sizes(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    frames[static_cast<size_t>(i)].keyframe = cursor.U8() != 0;
    frames[static_cast<size_t>(i)].qp = cursor.U8();
    sizes[static_cast<size_t>(i)] = cursor.U32();
  }
  if (!cursor.ok()) return Status::DataLoss("truncated segment header");
  size_t pos = 12 + static_cast<size_t>(count) * 6;
  for (int i = 0; i < count; ++i) {
    if (pos + sizes[static_cast<size_t>(i)] > size) {
      return Status::DataLoss("truncated segment payload");
    }
    frames[static_cast<size_t>(i)].data.assign(data + pos,
                                               data + pos + sizes[static_cast<size_t>(i)]);
    pos += sizes[static_cast<size_t>(i)];
  }
  for (EncodedFrame& frame : frames) out.push_back(std::move(frame));
  return Status::Ok();
}

}  // namespace

std::string CameraStreamName(int camera_id) {
  return "camera_" + std::to_string(camera_id);
}

std::string VideoStorageService::ObjectName(const std::string& name,
                                            const VariantKey& key) {
  return "vss/" + name + "/" + VariantTag(key) + ".var";
}

StatusOr<std::unique_ptr<VideoStorageService>> VideoStorageService::Open(
    const VssOptions& options) {
  if (options.store == nullptr) {
    return Status::InvalidArgument("vss needs a backing store");
  }
  if (options.gops_per_segment < 1) {
    return Status::InvalidArgument("gops_per_segment must be >= 1");
  }
  if (options.compaction_byte_slack < 1.0) {
    return Status::InvalidArgument("compaction_byte_slack must be >= 1");
  }
  std::unique_ptr<VideoStorageService> service(new VideoStorageService(options));
  VR_RETURN_IF_ERROR(service->LoadCatalog());
  return service;
}

// --- Ingest --------------------------------------------------------------

StatusOr<VariantInfo> VideoStorageService::WriteVariantObject(
    const std::string& name, const VariantKey& key, const EncodedVideo& stream,
    bool base) const {
  TRACE_SPAN("vss_persist");
  std::vector<int> starts = video::codec::GopStarts(stream);
  if (starts.empty() || starts.front() != 0) {
    return Status::InvalidArgument("stream must open with a keyframe");
  }
  VariantInfo info;
  info.key = key;
  info.base = base;
  VR_ASSIGN_OR_RETURN(ShardedStore::Writer writer,
                      options_.store->OpenWriter(ObjectName(name, key)));
  int64_t offset = 0;
  size_t step = static_cast<size_t>(options_.gops_per_segment);
  for (size_t s = 0; s < starts.size(); s += step) {
    int first = starts[s];
    int end = s + step < starts.size() ? starts[s + step] : stream.FrameCount();
    std::vector<uint8_t> segment = SerializeSegment(stream, first, end - first);
    VR_RETURN_IF_ERROR(writer.Append(segment));
    info.segments.push_back(
        {offset, static_cast<int64_t>(segment.size()), first, end - first});
    offset += static_cast<int64_t>(segment.size());
  }
  VR_RETURN_IF_ERROR(writer.Close());
  info.bytes = offset;
  return info;
}

Status VideoStorageService::Ingest(const std::string& name,
                                   const EncodedVideo& video) {
  TRACE_SPAN("vss_ingest");
  if (name.empty()) return Status::InvalidArgument("empty video name");
  if (video.FrameCount() == 0) return Status::InvalidArgument("empty video");
  if (video.width <= 0 || video.height <= 0) {
    return Status::InvalidArgument("video has no dimensions");
  }
  VariantKey base_key{video.width, video.height, 0};
  VR_ASSIGN_OR_RETURN(VariantInfo base_info,
                      WriteVariantObject(name, base_key, video, /*base=*/true));

  std::vector<int> starts = video::codec::GopStarts(video);
  int gop_length =
      starts.size() > 1 ? starts[1] - starts[0] : video.FrameCount();

  std::lock_guard lock(mutex_);
  auto it = catalog_.find(name);
  if (it != catalog_.end()) {
    // Replacing a video drops its stale transcoded variants (the base
    // object was already replaced by the writer's install). A variant a
    // reader still has pinned is not deleted under it: the delete is
    // deferred to the last unpin, so the in-flight fetch stays readable.
    for (const auto& [key, variant] : it->second.variants) {
      stats_.bytes_stored -= variant.bytes;
      VssMetrics::Get().bytes_stored.Add(static_cast<double>(-variant.bytes));
      if (key == base_key) continue;
      auto pin = pins_.find({name, key});
      if (pin != pins_.end() && pin->second > 0) {
        deferred_deletes_.insert({name, key});
      } else {
        options_.store->Delete(ObjectName(name, key));
      }
    }
    catalog_.erase(it);
  }
  // The new ingest just overwrote the base object, so a delete deferred for
  // the same (name, base tier) would now destroy fresh data.
  deferred_deletes_.erase({name, base_key});
  // Resident copies of the old content are stale too.
  const std::string prefix = name + "/";
  for (auto res = resident_.begin(); res != resident_.end();) {
    if (res->first.compare(0, prefix.size(), prefix) == 0) {
      resident_bytes_ -= res->second.bytes;
      VssMetrics::Get().resident_bytes.Add(static_cast<double>(-res->second.bytes));
      resident_lru_.erase(res->second.lru_pos);
      res = resident_.erase(res);
    } else {
      ++res;
    }
  }

  CatalogEntry entry;
  entry.name = name;
  entry.profile = video.profile;
  entry.fps = video.fps;
  entry.frame_count = video.FrameCount();
  entry.gop_length = gop_length;
  base_info.last_use = ++use_clock_;
  stats_.bytes_stored += base_info.bytes;
  VssMetrics::Get().bytes_stored.Add(static_cast<double>(base_info.bytes));
  entry.variants[base_key] = std::move(base_info);
  catalog_[name] = std::move(entry);
  return SaveCatalogLocked();
}

// --- Read paths ----------------------------------------------------------

StatusOr<EncodedVideo> VideoStorageService::FetchSegments(
    const CatalogEntry& props, const VariantInfo& variant, size_t seg_first,
    size_t seg_count, int64_t* bytes_fetched) const {
  TRACE_SPAN("vss_fetch");
  if (seg_count == 0 || seg_first + seg_count > variant.segments.size()) {
    return Status::InvalidArgument("segment span outside the variant");
  }
  const SegmentInfo& first = variant.segments[seg_first];
  const SegmentInfo& last = variant.segments[seg_first + seg_count - 1];
  int64_t begin = first.offset;
  int64_t length = last.offset + last.length - begin;
  VR_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      options_.store->Read(ObjectName(props.name, variant.key), begin, length));
  *bytes_fetched += length;

  EncodedVideo out;
  out.profile = props.profile;
  out.width = variant.key.width;
  out.height = variant.key.height;
  out.fps = props.fps;
  for (size_t s = seg_first; s < seg_first + seg_count; ++s) {
    const SegmentInfo& seg = variant.segments[s];
    VR_RETURN_IF_ERROR(ParseSegment(bytes.data() + (seg.offset - begin),
                                    static_cast<size_t>(seg.length), seg,
                                    out.frames));
  }
  return out;
}

StatusOr<EncodedVideo> VideoStorageService::Transcode(
    const EncodedVideo& source_video, const CatalogEntry& props,
    const VariantKey& tier) const {
  TRACE_SPAN("vss_transcode");
  VR_ASSIGN_OR_RETURN(
      video::Video decoded,
      video::codec::ParallelDecode(source_video, options_.transcode_threads));
  if (tier.width != source_video.width || tier.height != source_video.height) {
    for (video::Frame& frame : decoded.frames) {
      VR_ASSIGN_OR_RETURN(frame,
                          video::BilinearResize(frame, tier.width, tier.height));
    }
  }
  video::codec::EncoderConfig config;
  config.profile = props.profile;
  config.gop_length = props.gop_length > 0 ? props.gop_length : 15;
  config.qp = tier.qp;
  VR_ASSIGN_OR_RETURN(EncodedVideo out,
                      video::codec::ParallelEncode(decoded, config,
                                                   options_.transcode_threads));
  out.fps = props.fps;
  return out;
}

StatusOr<std::shared_ptr<const EncodedVideo>> VideoStorageService::AcquireStream(
    const std::string& name, const VariantKey& tier) {
  const auto read_start = std::chrono::steady_clock::now();
  std::unique_lock lock(mutex_);
  bool counted_wait = false;
  // Set when a leader's transcode blew the deadline: this reader gives up
  // on materializing `tier` and serves the chosen source variant directly.
  bool degrade_to_source = false;
  bool direct = false;
  VariantKey serving_key;
  VariantInfo source_copy;
  CatalogEntry props;
  std::shared_ptr<Flight> flight_state;
  std::pair<std::string, VariantKey> flight_key;
  for (;;) {
    auto it = catalog_.find(name);
    if (it == catalog_.end()) return Status::NotFound("no such video: " + name);
    CatalogEntry& entry = it->second;
    const VariantInfo* chosen = ChooseSource(entry, tier, options_.cost_model);
    if (chosen == nullptr) {
      return Status::NotFound("no variant of " + name + " can serve tier " +
                              VariantTag(tier));
    }
    direct = Serves(*chosen, tier) || degrade_to_source;
    serving_key = direct ? chosen->key : tier;
    const std::string rkey = name + "/" + VariantTag(serving_key);
    auto res = resident_.find(rkey);
    if (res != resident_.end()) {
      TouchResidentLocked(rkey);
      ++stats_.resident_hits;
      VssMetrics::Get().resident_hits.Increment();
      if (degrade_to_source) {
        ++stats_.degraded_reads;
        VssMetrics::Get().degraded_reads.Increment();
        fault::NoteDegraded();
      }
      return res->second.video;
    }
    auto flight = std::make_pair(name, serving_key);
    auto fit = inflight_.find(flight);
    if (fit != inflight_.end()) {
      // Hold the flight state across the wait: the leader publishes its
      // outcome there, so a failed or degraded materialization is observed
      // instead of silently re-led.
      std::shared_ptr<Flight> state = fit->second;
      if (!direct && !counted_wait) {
        counted_wait = true;
        ++stats_.transcode_coalesced;
        VssMetrics::Get().transcode_coalesced.Increment();
      }
      inflight_cv_.wait(lock, [&state] { return state->done; });
      if (!state->status.ok()) return state->status;
      if (state->degraded) degrade_to_source = true;
      continue;  // Re-plan: the catalog may have changed while waiting.
    }
    flight_key = flight;
    flight_state = std::make_shared<Flight>();
    inflight_.emplace(flight_key, flight_state);
    VariantInfo& source = entry.variants.at(chosen->key);
    ++pins_[{name, source.key}];
    source.last_use = ++use_clock_;
    ++source.hits;
    source_copy = source;
    props.name = entry.name;
    props.profile = entry.profile;
    props.fps = entry.fps;
    props.frame_count = entry.frame_count;
    props.gop_length = entry.gop_length;
    break;
  }
  lock.unlock();

  // Leader: fetch (and transcode) outside the lock; waiters block on the
  // in-flight marker, so exactly one materialization runs per variant.
  // A transcode past the deadline degrades: the already-fetched source is
  // served as-is (a better variant than requested, never a worse one).
  int64_t fetched = 0;
  bool degraded = false;
  StatusOr<EncodedVideo> produced = [&]() -> StatusOr<EncodedVideo> {
    VR_ASSIGN_OR_RETURN(EncodedVideo source_video,
                        FetchSegments(props, source_copy, 0,
                                      source_copy.segments.size(), &fetched));
    if (direct) return source_video;
    if (options_.faults != nullptr) {
      options_.faults->MaybeDelay(fault::Site::kTranscodeStall);
    }
    if (options_.transcode_deadline.count() > 0 &&
        std::chrono::steady_clock::now() - read_start >
            options_.transcode_deadline) {
      degraded = true;
      return source_video;
    }
    return Transcode(source_video, props, tier);
  }();
  if (degraded) serving_key = source_copy.key;

  // Persist a fresh transcode before publishing so later (cold) readers
  // find it materialized.
  bool persist = produced.ok() && !direct && !degraded &&
                 options_.variant_cache_bytes > 0;
  StatusOr<VariantInfo> new_variant = VariantInfo{};
  if (persist) {
    new_variant = WriteVariantObject(name, tier, *produced, /*base=*/false);
  }

  lock.lock();
  UnpinLocked(name, source_copy.key);
  flight_state->done = true;
  flight_state->degraded = degraded;
  flight_state->status = produced.ok() ? Status::Ok() : produced.status();
  inflight_.erase(flight_key);
  if (!produced.ok()) {
    inflight_cv_.notify_all();
    return produced.status();
  }
  auto& metrics = VssMetrics::Get();
  stats_.segments_fetched += static_cast<int64_t>(source_copy.segments.size());
  stats_.bytes_fetched += fetched;
  metrics.segments_fetched.Increment(
      static_cast<double>(source_copy.segments.size()));
  metrics.bytes_fetched.Increment(static_cast<double>(fetched));
  if (direct || degraded) {
    if (source_copy.base) {
      ++stats_.base_hits;
      metrics.base_hits.Increment();
    } else {
      ++stats_.variant_hits;
      metrics.variant_hits.Increment();
    }
  } else {
    ++stats_.transcodes;
    metrics.transcodes.Increment();
  }
  if (degraded || degrade_to_source) {
    ++stats_.degraded_reads;
    metrics.degraded_reads.Increment();
    fault::NoteDegraded();
  }
  if (persist && new_variant.ok()) {
    auto cat = catalog_.find(name);
    if (cat != catalog_.end() && cat->second.variants.count(tier) == 0) {
      VariantInfo info = std::move(*new_variant);
      info.last_use = ++use_clock_;
      stats_.bytes_stored += info.bytes;
      metrics.bytes_stored.Add(static_cast<double>(info.bytes));
      cat->second.variants[tier] = std::move(info);
      ++stats_.variants_persisted;
      metrics.variants_persisted.Increment();
      // The persist overwrote the store object for (name, tier); a delete
      // deferred for the stale incarnation must not fire on the new one.
      deferred_deletes_.erase({name, tier});
      EvictVariantsLocked();
      // A failed catalog save is not a failed read: the record stays in
      // memory and rides along with the next successful save.
      Status save_status = SaveCatalogLocked();
      (void)save_status;
    } else {
      // The video was replaced while we transcoded; our object is stale.
      options_.store->Delete(ObjectName(name, tier));
    }
  }
  auto shared = std::make_shared<const EncodedVideo>(std::move(*produced));
  PublishResidentLocked(name + "/" + VariantTag(serving_key), shared);
  inflight_cv_.notify_all();
  return shared;
}

StatusOr<std::shared_ptr<const EncodedVideo>> VideoStorageService::ReadVideo(
    const std::string& name, const VariantKey& tier) {
  TRACE_SPAN("vss_read");
  {
    std::lock_guard lock(mutex_);
    ++stats_.reads;
  }
  VssMetrics::Get().reads.Increment();
  return AcquireStream(name, tier);
}

StatusOr<RangeRead> VideoStorageService::ReadRange(const std::string& name,
                                                   const VariantKey& tier,
                                                   int first, int count) {
  TRACE_SPAN("vss_read_range");
  VssMetrics::Get().range_reads.Increment();
  std::unique_lock lock(mutex_);
  ++stats_.range_reads;
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("no such video: " + name);
  CatalogEntry& entry = it->second;
  if (count <= 0) return Status::InvalidArgument("empty frame range");
  if (first < 0 || first + count > entry.frame_count) {
    return Status::OutOfRange("frame range outside the stream");
  }
  const VariantInfo* chosen = ChooseSource(entry, tier, options_.cost_model);
  if (chosen != nullptr && Serves(*chosen, tier)) {
    const std::string rkey = name + "/" + VariantTag(chosen->key);
    auto res = resident_.find(rkey);
    if (res != resident_.end()) {
      TouchResidentLocked(rkey);
      ++stats_.resident_hits;
      VssMetrics::Get().resident_hits.Increment();
      return RangeRead{res->second.video, 0};
    }
    // Covering GOP-aligned segment span of [first, first + count).
    const std::vector<SegmentInfo>& segments = chosen->segments;
    size_t seg_first = 0;
    while (seg_first + 1 < segments.size() &&
           segments[seg_first + 1].first_frame <= first) {
      ++seg_first;
    }
    size_t seg_end = seg_first;
    while (seg_end < segments.size() &&
           segments[seg_end].first_frame < first + count) {
      ++seg_end;
    }
    if (!(seg_first == 0 && seg_end == segments.size())) {
      VariantInfo& source = entry.variants.at(chosen->key);
      ++pins_[{name, source.key}];
      source.last_use = ++use_clock_;
      ++source.hits;
      VariantInfo source_copy = source;
      CatalogEntry props;
      props.name = entry.name;
      props.profile = entry.profile;
      props.fps = entry.fps;
      props.frame_count = entry.frame_count;
      props.gop_length = entry.gop_length;
      lock.unlock();

      int64_t fetched = 0;
      StatusOr<EncodedVideo> video = FetchSegments(
          props, source_copy, seg_first, seg_end - seg_first, &fetched);

      lock.lock();
      UnpinLocked(name, source_copy.key);
      if (!video.ok()) return video.status();
      auto& metrics = VssMetrics::Get();
      stats_.segments_fetched += static_cast<int64_t>(seg_end - seg_first);
      stats_.bytes_fetched += fetched;
      metrics.segments_fetched.Increment(static_cast<double>(seg_end - seg_first));
      metrics.bytes_fetched.Increment(static_cast<double>(fetched));
      if (source_copy.base) {
        ++stats_.base_hits;
        metrics.base_hits.Increment();
      } else {
        ++stats_.variant_hits;
        metrics.variant_hits.Increment();
      }
      return RangeRead{std::make_shared<const EncodedVideo>(std::move(*video)),
                       source_copy.segments[seg_first].first_frame};
    }
  }
  // Whole-stream span, or the tier is not materialized: acquire the full
  // stream (single-flight materialization) and serve the range from it.
  lock.unlock();
  VR_ASSIGN_OR_RETURN(std::shared_ptr<const EncodedVideo> video,
                      AcquireStream(name, tier));
  return RangeRead{std::move(video), 0};
}

// --- Maintenance ---------------------------------------------------------

StatusOr<int> VideoStorageService::Compact() {
  TRACE_SPAN("vss_compact");
  std::lock_guard lock(mutex_);
  std::set<std::pair<std::string, VariantKey>> pinned = PinnedLocked();
  int dropped = 0;
  for (auto& [name, entry] : catalog_) {
    for (const VariantKey& key :
         CompactionVictims(entry, options_.compaction_byte_slack)) {
      if (pinned.count({name, key})) continue;
      auto vit = entry.variants.find(key);
      if (vit == entry.variants.end()) continue;
      stats_.bytes_stored -= vit->second.bytes;
      VssMetrics::Get().bytes_stored.Add(static_cast<double>(-vit->second.bytes));
      options_.store->Delete(ObjectName(name, key));
      entry.variants.erase(vit);
      ++stats_.variants_compacted;
      VssMetrics::Get().variants_compacted.Increment();
      ++dropped;
    }
  }
  if (dropped > 0) VR_RETURN_IF_ERROR(SaveCatalogLocked());
  return dropped;
}

void VideoStorageService::EvictVariantsLocked() {
  std::vector<std::pair<std::string, VariantKey>> victims = EvictionVictims(
      catalog_, options_.variant_cache_bytes, PinnedLocked());
  for (const auto& [name, key] : victims) {
    auto it = catalog_.find(name);
    if (it == catalog_.end()) continue;
    auto vit = it->second.variants.find(key);
    if (vit == it->second.variants.end()) continue;
    stats_.bytes_stored -= vit->second.bytes;
    VssMetrics::Get().bytes_stored.Add(static_cast<double>(-vit->second.bytes));
    options_.store->Delete(ObjectName(name, key));
    it->second.variants.erase(vit);
    ++stats_.variants_evicted;
    VssMetrics::Get().variants_evicted.Increment();
  }
}

std::set<std::pair<std::string, VariantKey>> VideoStorageService::PinnedLocked()
    const {
  std::set<std::pair<std::string, VariantKey>> pinned;
  for (const auto& [id, count] : pins_) {
    if (count > 0) pinned.insert(id);
  }
  return pinned;
}

void VideoStorageService::UnpinLocked(const std::string& name,
                                      const VariantKey& key) {
  auto pin = pins_.find({name, key});
  if (pin == pins_.end()) return;
  if (--pin->second > 0) return;
  pins_.erase(pin);
  auto deferred = deferred_deletes_.find({name, key});
  if (deferred == deferred_deletes_.end()) return;
  deferred_deletes_.erase(deferred);
  // Execute the deferred delete only when nothing else now owns the object:
  // a re-persisted variant is back in the catalog, and a leader mid-flight
  // for this key is about to overwrite the object anyway.
  auto cat = catalog_.find(name);
  bool live = cat != catalog_.end() && cat->second.variants.count(key) > 0;
  if (!live && inflight_.count({name, key}) == 0) {
    options_.store->Delete(ObjectName(name, key));
  }
}

// --- Resident cache ------------------------------------------------------

void VideoStorageService::PublishResidentLocked(
    const std::string& rkey, std::shared_ptr<const EncodedVideo> video) {
  int64_t bytes = video->TotalBytes();
  auto [it, inserted] = resident_.try_emplace(rkey);
  if (!inserted) {
    resident_bytes_ -= it->second.bytes;
    VssMetrics::Get().resident_bytes.Add(static_cast<double>(-it->second.bytes));
    resident_lru_.erase(it->second.lru_pos);
  }
  it->second.video = std::move(video);
  it->second.bytes = bytes;
  resident_lru_.push_back(rkey);
  it->second.lru_pos = std::prev(resident_lru_.end());
  resident_bytes_ += bytes;
  VssMetrics::Get().resident_bytes.Add(static_cast<double>(bytes));
  EvictResidentLocked();
}

void VideoStorageService::TouchResidentLocked(const std::string& rkey) {
  ResidentEntry& entry = resident_.at(rkey);
  resident_lru_.splice(resident_lru_.end(), resident_lru_, entry.lru_pos);
}

void VideoStorageService::EvictResidentLocked() {
  while (resident_bytes_ > options_.resident_bytes && !resident_lru_.empty()) {
    auto it = resident_.find(resident_lru_.front());
    resident_bytes_ -= it->second.bytes;
    VssMetrics::Get().resident_bytes.Add(static_cast<double>(-it->second.bytes));
    resident_.erase(it);
    resident_lru_.pop_front();
    ++stats_.resident_evictions;
    VssMetrics::Get().resident_evictions.Increment();
  }
}

void VideoStorageService::DropResident() {
  std::lock_guard lock(mutex_);
  VssMetrics::Get().resident_bytes.Add(static_cast<double>(-resident_bytes_));
  resident_.clear();
  resident_lru_.clear();
  resident_bytes_ = 0;
}

// --- Introspection -------------------------------------------------------

bool VideoStorageService::Contains(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return catalog_.count(name) > 0;
}

std::vector<std::string> VideoStorageService::List() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

StatusOr<CatalogEntry> VideoStorageService::Describe(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("no such video: " + name);
  return it->second;
}

StatusOr<VariantKey> VideoStorageService::BaseTier(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("no such video: " + name);
  for (const auto& [key, variant] : it->second.variants) {
    if (variant.base) return key;
  }
  return Status::Internal("video has no base variant: " + name);
}

VssStats VideoStorageService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

// --- Catalog persistence -------------------------------------------------

Status VideoStorageService::SaveCatalogLocked() {
  ByteWriter writer;
  writer.U32(kCatalogMagic);
  writer.U64(use_clock_);
  writer.U32(static_cast<uint32_t>(catalog_.size()));
  for (const auto& [name, entry] : catalog_) {
    writer.Str(name);
    writer.U8(static_cast<uint8_t>(entry.profile));
    writer.F64(entry.fps);
    writer.U32(static_cast<uint32_t>(entry.frame_count));
    writer.U32(static_cast<uint32_t>(entry.gop_length));
    writer.U32(static_cast<uint32_t>(entry.variants.size()));
    for (const auto& [key, variant] : entry.variants) {
      writer.I32(key.width);
      writer.I32(key.height);
      writer.I32(key.qp);
      writer.U8(variant.base ? 1 : 0);
      writer.U64(static_cast<uint64_t>(variant.bytes));
      writer.U64(variant.last_use);
      writer.U64(static_cast<uint64_t>(variant.hits));
      writer.U32(static_cast<uint32_t>(variant.segments.size()));
      for (const SegmentInfo& segment : variant.segments) {
        writer.U64(static_cast<uint64_t>(segment.offset));
        writer.U64(static_cast<uint64_t>(segment.length));
        writer.U32(static_cast<uint32_t>(segment.first_frame));
        writer.U32(static_cast<uint32_t>(segment.frame_count));
      }
    }
  }
  return options_.store->Put(kCatalogObject, writer.Take());
}

Status VideoStorageService::LoadCatalog() {
  StatusOr<std::vector<uint8_t>> bytes = options_.store->Get(kCatalogObject);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return Status::Ok();
    return bytes.status();
  }
  ByteCursor cursor(*bytes);
  if (cursor.U32() != kCatalogMagic) return Status::DataLoss("bad vss catalog magic");
  use_clock_ = cursor.U64();
  uint32_t video_count = cursor.U32();
  std::lock_guard lock(mutex_);
  catalog_.clear();
  for (uint32_t v = 0; v < video_count; ++v) {
    CatalogEntry entry;
    entry.name = cursor.Str();
    entry.profile = static_cast<video::codec::Profile>(cursor.U8());
    entry.fps = cursor.F64();
    entry.frame_count = static_cast<int>(cursor.U32());
    entry.gop_length = static_cast<int>(cursor.U32());
    uint32_t variant_count = cursor.U32();
    for (uint32_t i = 0; i < variant_count; ++i) {
      VariantKey key;
      key.width = cursor.I32();
      key.height = cursor.I32();
      key.qp = cursor.I32();
      VariantInfo variant;
      variant.key = key;
      variant.base = cursor.U8() != 0;
      variant.bytes = static_cast<int64_t>(cursor.U64());
      variant.last_use = cursor.U64();
      variant.hits = static_cast<int64_t>(cursor.U64());
      uint32_t segment_count = cursor.U32();
      for (uint32_t s = 0; s < segment_count; ++s) {
        SegmentInfo segment;
        segment.offset = static_cast<int64_t>(cursor.U64());
        segment.length = static_cast<int64_t>(cursor.U64());
        segment.first_frame = static_cast<int>(cursor.U32());
        segment.frame_count = static_cast<int>(cursor.U32());
        variant.segments.push_back(segment);
      }
      stats_.bytes_stored += variant.bytes;
      entry.variants[key] = std::move(variant);
    }
    if (!cursor.ok()) return Status::DataLoss("truncated vss catalog");
    catalog_[entry.name] = std::move(entry);
  }
  VssMetrics::Get().bytes_stored.Add(static_cast<double>(stats_.bytes_stored));
  return Status::Ok();
}

}  // namespace visualroad::storage
