#ifndef VISUALROAD_STORAGE_SHARDED_STORE_H_
#define VISUALROAD_STORAGE_SHARDED_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/status.h"

namespace visualroad::storage {

/// Configuration for a sharded store.
struct StoreOptions {
  /// Root directory; one subdirectory per simulated datanode plus a
  /// namenode manifest live underneath.
  std::string root;
  /// Number of simulated datanodes.
  int num_nodes = 4;
  /// Replication factor per block (clamped to num_nodes).
  int replication = 2;
  /// Block size in bytes.
  int64_t block_size = int64_t{1} << 20;
  /// Label under which this store's counters appear in the process-wide
  /// metrics registry, as `vr_store_*{store="<label>"}`.
  std::string metrics_label = "main";
  /// Optional deterministic fault source (not owned; must outlive the
  /// store). When set, block reads can observe injected transient replica
  /// failures and slow reads, and replica writes can fail and re-place.
  fault::FaultInjector* faults = nullptr;
  /// Retry budget for block reads that hit transient failures (injected
  /// flaps or FailDatanode windows). The defaults give up within ~7 ms, so
  /// a genuinely dead file still fails fast.
  fault::RetryOptions read_retry;
};

/// Per-instance I/O counters (the registry carries the same values process
/// wide; these stay testable when several stores share a label).
struct StoreStats {
  int64_t blocks_written = 0;
  int64_t blocks_read = 0;
  /// Physical bytes written, replication included.
  int64_t bytes_written = 0;
  /// Bytes delivered to readers (logical, not per replica).
  int64_t bytes_read = 0;
  /// Replicas skipped (down or unreadable) before a block read succeeded.
  int64_t replica_failovers = 0;
  /// Read() calls that touched a strict subset of a file's blocks.
  int64_t partial_reads = 0;
  /// Block-read attempts beyond the first (transient failure, retried).
  int64_t read_retries = 0;
  /// Replica writes that failed mid-block and were re-placed on another node.
  int64_t write_replacements = 0;
  /// Physical bytes currently stored, replication included (live capacity;
  /// excludes orphaned/dropped replicas).
  int64_t bytes_stored = 0;
  /// Physical bytes reclaimed by dropping replicas (abandoned writers,
  /// overwrites, deletes).
  int64_t bytes_reclaimed = 0;
};

/// One replicated block of a stored file.
struct BlockPlacement {
  uint64_t block_id = 0;
  int64_t size = 0;
  std::vector<int> replicas;
};

/// The HDFS stand-in used by the VCD's distributed offline mode (Section
/// 3.2: inputs live "on the local file system ... or a distributed file
/// system (we currently support HDFS)"). Files are split into fixed-size
/// blocks, each block is replicated across `replication` simulated
/// datanodes (directories), and a namenode-style manifest maps file names
/// to block/replica placements. Reads reassemble blocks and fail over to a
/// replica when a datanode is down.
///
/// Thread-safe: any number of concurrent readers; writers are exclusive.
class ShardedStore {
 public:
  /// Opens (or creates) a store at options.root, loading the manifest when
  /// one exists.
  static StatusOr<ShardedStore> Open(const StoreOptions& options);

  /// Streams a file into the store block-by-block: blocks are placed and
  /// replicated as they fill, so only one block is ever buffered. The file
  /// becomes visible (replacing any previous version) at Close(); a writer
  /// destroyed without Close() deletes the blocks it wrote.
  class Writer {
   public:
    Writer(Writer&& other) noexcept;
    Writer& operator=(Writer&& other) noexcept;
    ~Writer();

    Status Append(const uint8_t* data, size_t size);
    Status Append(const std::vector<uint8_t>& bytes) {
      return Append(bytes.data(), bytes.size());
    }

    /// Flushes the final block, installs the file, persists the manifest.
    Status Close();

    /// Bytes appended so far.
    int64_t size() const { return size_; }

   private:
    friend class ShardedStore;
    Writer(ShardedStore* store, std::string name)
        : store_(store), name_(std::move(name)) {}
    void Abandon();

    ShardedStore* store_ = nullptr;  // Null once closed or moved from.
    std::string name_;
    std::vector<uint8_t> pending_;
    std::vector<BlockPlacement> blocks_;
    int64_t size_ = 0;
  };

  /// Opens a streaming writer for `name`. The store must outlive (and not
  /// move while) the writer.
  StatusOr<Writer> OpenWriter(const std::string& name);

  /// Stores a file, splitting it into replicated blocks. Overwrites.
  /// Convenience over OpenWriter for callers that already hold the bytes.
  Status Put(const std::string& name, const std::vector<uint8_t>& bytes);

  /// Streams a file to `sink` block-by-block (one block buffered at a
  /// time), failing over across replicas as needed.
  Status Scan(const std::string& name,
              const std::function<Status(const uint8_t* data, size_t size)>& sink) const;

  /// Reads a whole file back. Prefer Scan/Read for large files.
  StatusOr<std::vector<uint8_t>> Get(const std::string& name) const;

  /// Partial read of `length` bytes at `offset`: fetches only the covering
  /// blocks, and within each block only the covering byte slice, with the
  /// same replica fail-over as Get.
  StatusOr<std::vector<uint8_t>> Read(const std::string& name, int64_t offset,
                                      int64_t length) const;

  /// Removes a file and its blocks.
  Status Delete(const std::string& name);

  /// All stored file names, sorted.
  std::vector<std::string> List() const;

  /// File metadata.
  struct FileInfo {
    int64_t size = 0;
    int block_count = 0;
  };
  StatusOr<FileInfo> Stat(const std::string& name) const;

  /// Failure injection: marks a datanode unreachable (reads fail over to
  /// replicas; Put stops placing blocks there).
  Status DisableNode(int node);
  /// Brings a datanode back.
  Status EnableNode(int node);
  /// Transient failure injection: the node is unreachable for `duration`
  /// and then recovers on its own (time-based, no EnableNode needed).
  /// Reads fail over and retry under StoreOptions::read_retry, so a flap
  /// shorter than the retry deadline is invisible to callers.
  Status FailDatanode(int node, std::chrono::milliseconds duration);

  /// Physical bytes each datanode holds for files whose names start with
  /// `prefix`, replication included. Sized num_nodes. The distributed
  /// coordinator uses this to place query work on the worker standing in
  /// for the datanode that holds most of the input stream's blocks.
  std::vector<int64_t> NodeBytesForPrefix(const std::string& prefix) const;

  const StoreOptions& options() const { return options_; }
  StoreStats stats() const;

 private:
  struct FileEntry {
    int64_t size = 0;
    std::vector<BlockPlacement> blocks;
  };

  /// Registry instruments shared by every store with the same label.
  struct Instruments {
    metrics::Counter* blocks_written = nullptr;
    metrics::Counter* blocks_read = nullptr;
    metrics::Counter* bytes_written = nullptr;
    metrics::Counter* bytes_read = nullptr;
    metrics::Counter* replica_failovers = nullptr;
    metrics::Counter* partial_reads = nullptr;
    metrics::Counter* read_retries = nullptr;
    metrics::Counter* write_replacements = nullptr;
    metrics::Counter* bytes_reclaimed = nullptr;
    metrics::Gauge* bytes_stored = nullptr;
  };

  /// Counter updates happen under a shared (reader) lock, so they must be
  /// atomic.
  struct AtomicStats {
    std::atomic<int64_t> blocks_written{0};
    std::atomic<int64_t> blocks_read{0};
    std::atomic<int64_t> bytes_written{0};
    std::atomic<int64_t> bytes_read{0};
    std::atomic<int64_t> replica_failovers{0};
    std::atomic<int64_t> partial_reads{0};
    std::atomic<int64_t> read_retries{0};
    std::atomic<int64_t> write_replacements{0};
    std::atomic<int64_t> bytes_stored{0};
    std::atomic<int64_t> bytes_reclaimed{0};
  };

  explicit ShardedStore(StoreOptions options);

  std::string NodeDir(int node) const;
  std::string BlockPath(int node, uint64_t block_id) const;
  std::string ManifestPath() const;
  Status SaveManifestLocked() const;
  Status LoadManifestLocked();

  /// Places and writes one replicated block (takes the exclusive lock).
  StatusOr<BlockPlacement> WriteBlock(const uint8_t* data, size_t size);
  /// Installs a streamed file under `name`, replacing any previous version.
  Status Install(const std::string& name, FileEntry entry);
  /// Removes block replicas (abandoned writer, overwrite, delete) and
  /// reconciles the capacity accounting: every replica actually removed is
  /// subtracted from bytes_stored and added to bytes_reclaimed.
  void DropBlocks(const std::vector<BlockPlacement>& blocks) const;
  /// True when `node` is disabled or inside an active FailDatanode window.
  /// Caller holds at least a shared lock.
  bool NodeDownLocked(int node) const;

  /// Reads [slice_offset, slice_offset + slice_length) of `block` into
  /// `out`, failing over across replicas. Caller holds at least a shared
  /// lock.
  Status ReadBlockSlice(const BlockPlacement& block, int64_t slice_offset,
                        int64_t slice_length, uint8_t* out,
                        const std::string& name) const;

  StoreOptions options_;
  Instruments instruments_;
  std::map<std::string, FileEntry> files_;
  std::set<int> disabled_nodes_;
  /// Transiently failed nodes: node -> steady-clock expiry of the flap.
  /// Read under the shared lock (expiry checked, never erased there);
  /// pruned lazily by operations that already hold the exclusive lock.
  std::map<int, std::chrono::steady_clock::time_point> flapped_nodes_;
  uint64_t next_block_id_ = 1;
  int next_node_ = 0;  // Round-robin placement cursor.
  std::unique_ptr<AtomicStats> stats_;
  /// In a unique_ptr so the store stays movable (Open returns by value).
  mutable std::unique_ptr<std::shared_mutex> mutex_;
};

}  // namespace visualroad::storage

#endif  // VISUALROAD_STORAGE_SHARDED_STORE_H_
