#ifndef VISUALROAD_STORAGE_SHARDED_STORE_H_
#define VISUALROAD_STORAGE_SHARDED_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace visualroad::storage {

/// Configuration for a sharded store.
struct StoreOptions {
  /// Root directory; one subdirectory per simulated datanode plus a
  /// namenode manifest live underneath.
  std::string root;
  /// Number of simulated datanodes.
  int num_nodes = 4;
  /// Replication factor per block (clamped to num_nodes).
  int replication = 2;
  /// Block size in bytes.
  int64_t block_size = int64_t{1} << 20;
};

/// The HDFS stand-in used by the VCD's distributed offline mode (Section
/// 3.2: inputs live "on the local file system ... or a distributed file
/// system (we currently support HDFS)"). Files are split into fixed-size
/// blocks, each block is replicated across `replication` simulated
/// datanodes (directories), and a namenode-style manifest maps file names
/// to block/replica placements. Reads reassemble blocks and fail over to a
/// replica when a datanode is down.
class ShardedStore {
 public:
  /// Opens (or creates) a store at options.root, loading the manifest when
  /// one exists.
  static StatusOr<ShardedStore> Open(const StoreOptions& options);

  /// Stores a file, splitting it into replicated blocks. Overwrites.
  Status Put(const std::string& name, const std::vector<uint8_t>& bytes);

  /// Reads a file back, failing over across replicas as needed.
  StatusOr<std::vector<uint8_t>> Get(const std::string& name) const;

  /// Removes a file and its blocks.
  Status Delete(const std::string& name);

  /// All stored file names, sorted.
  std::vector<std::string> List() const;

  /// File metadata.
  struct FileInfo {
    int64_t size = 0;
    int block_count = 0;
  };
  StatusOr<FileInfo> Stat(const std::string& name) const;

  /// Failure injection: marks a datanode unreachable (reads fail over to
  /// replicas; Put stops placing blocks there).
  Status DisableNode(int node);
  /// Brings a datanode back.
  Status EnableNode(int node);

  const StoreOptions& options() const { return options_; }

 private:
  struct BlockPlacement {
    uint64_t block_id = 0;
    int64_t size = 0;
    std::vector<int> replicas;
  };
  struct FileEntry {
    int64_t size = 0;
    std::vector<BlockPlacement> blocks;
  };

  explicit ShardedStore(StoreOptions options) : options_(std::move(options)) {}

  std::string NodeDir(int node) const;
  std::string BlockPath(int node, uint64_t block_id) const;
  std::string ManifestPath() const;
  Status SaveManifest() const;
  Status LoadManifest();

  StoreOptions options_;
  std::map<std::string, FileEntry> files_;
  std::set<int> disabled_nodes_;
  uint64_t next_block_id_ = 1;
  int next_node_ = 0;  // Round-robin placement cursor.
};

}  // namespace visualroad::storage

#endif  // VISUALROAD_STORAGE_SHARDED_STORE_H_
