#ifndef VISUALROAD_STORAGE_VSS_POLICY_H_
#define VISUALROAD_STORAGE_VSS_POLICY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "video/codec/codec.h"

namespace visualroad::storage {

/// One physical quality tier of a logical video (VSS, Haynes et al.: a
/// logical video is backed by one or more physical videos at different
/// resolution/quality operating points).
struct VariantKey {
  int width = 0;
  int height = 0;
  /// Constant QP the variant was transcoded at. 0 is the base sentinel:
  /// "the bitstream exactly as ingested", whatever QP schedule it carries.
  int qp = 0;

  bool operator==(const VariantKey& other) const {
    return width == other.width && height == other.height && qp == other.qp;
  }
  bool operator<(const VariantKey& other) const {
    if (width != other.width) return width < other.width;
    if (height != other.height) return height < other.height;
    return qp < other.qp;
  }
};

/// "384x216_qp32", or "384x216_base" for the ingested bitstream.
std::string VariantTag(const VariantKey& key);

/// One GOP-aligned segment of a variant object: a contiguous byte range
/// holding whole closed GOPs, so a frame range decodes from segment bytes
/// alone.
struct SegmentInfo {
  int64_t offset = 0;
  int64_t length = 0;
  int first_frame = 0;
  int frame_count = 0;
};

/// Catalog record of one materialized variant.
struct VariantInfo {
  VariantKey key;
  /// The ingested bitstream; never evicted, never compacted away.
  bool base = false;
  /// Total object size in the store.
  int64_t bytes = 0;
  std::vector<SegmentInfo> segments;
  /// Logical clock of the last read that used this variant (LRU eviction).
  uint64_t last_use = 0;
  int64_t hits = 0;
};

/// Catalog record of one logical video.
struct CatalogEntry {
  std::string name;
  video::codec::Profile profile = video::codec::Profile::kH264Like;
  double fps = 30.0;
  int frame_count = 0;
  /// Keyframe interval of the base bitstream; transcoded variants reuse it
  /// so every variant segments at the same GOP boundaries.
  int gop_length = 0;
  std::map<VariantKey, VariantInfo> variants;
};

/// Relative costs of serving a read. The absolute scale is arbitrary; only
/// ratios matter. Defaults reflect the VRC codec: decoding a pixel costs a
/// few byte-reads, encoding (motion search) costs several decodes.
struct CostModel {
  double read_per_byte = 1.0;
  double decode_per_pixel = 6.0;
  double encode_per_pixel = 18.0;
};

/// True when materialized `v` answers a read at `want` directly: same
/// resolution and quality no worse (base counts as best quality; a `want`
/// with qp 0 demands the base bitstream itself).
bool Serves(const VariantInfo& v, const VariantKey& want);

/// True when `source` could produce `want` by transcoding down: resolution
/// and quality at least as good, and `want` is a real transcode target
/// (qp > 0, no upscale).
bool CanTranscode(const VariantInfo& source, const VariantKey& want);

/// Cost of answering a read at `want` from `source`: bytes fetched, plus
/// decode+re-encode when the tier differs. +inf when `source` cannot serve
/// or produce `want`.
double ServeCost(const VariantInfo& source, const VariantKey& want,
                 int frame_count, const CostModel& model);

/// The cheapest materialized variant able to answer `want`, directly or by
/// transcoding down; null when none qualifies.
const VariantInfo* ChooseSource(const CatalogEntry& video, const VariantKey& want,
                                const CostModel& model);

/// True when cached variant `a` is dominated by materialized `b`: same
/// resolution, quality at least as good, and object no more than
/// `byte_slack` times larger — every read `a` answers, `b` answers at no
/// worse quality and at most `byte_slack` the read bytes, so a compaction
/// pass can drop `a`. Base variants are never dominated.
bool Dominates(const VariantInfo& b, const VariantInfo& a, double byte_slack);

/// Cached (non-base) variants of `video` that a compaction pass should
/// drop because another materialized variant dominates them.
std::vector<VariantKey> CompactionVictims(const CatalogEntry& video,
                                          double byte_slack);

/// Least-recently-used cached (non-base) variants to delete until the
/// cached bytes across `catalog` fit `budget_bytes`. `pinned` lists
/// variants a concurrent read is currently fetching; they are skipped.
std::vector<std::pair<std::string, VariantKey>> EvictionVictims(
    const std::map<std::string, CatalogEntry>& catalog, int64_t budget_bytes,
    const std::set<std::pair<std::string, VariantKey>>& pinned);

}  // namespace visualroad::storage

#endif  // VISUALROAD_STORAGE_VSS_POLICY_H_
