#include "vision/overlay.h"

#include <algorithm>

#include "common/serialize.h"
#include "vision/font.h"

namespace visualroad::vision {

video::Frame RenderDetectionFrame(int width, int height,
                                  const std::vector<Detection>& detections) {
  video::Frame frame(width, height);
  frame.Fill(video::kOmega.y, video::kOmega.u, video::kOmega.v);
  // Paint lowest-score first so the most confident detection wins overlaps
  // (matches Q2(c)'s min-class rule deterministically).
  std::vector<const Detection*> ordered;
  ordered.reserve(detections.size());
  for (const Detection& d : detections) ordered.push_back(&d);
  std::sort(ordered.begin(), ordered.end(),
            [](const Detection* a, const Detection* b) { return a->score < b->score; });
  for (const Detection* detection : ordered) {
    video::Yuv color = ClassColor(detection->object_class);
    RectI box = detection->box.Clamp(width, height);
    for (int y = box.y0; y < box.y1; ++y) {
      for (int x = box.x0; x < box.x1; ++x) {
        frame.SetPixel(x, y, color.y, color.u, color.v);
      }
    }
  }
  return frame;
}

video::Frame RenderCaptionFrame(int width, int height,
                                const video::WebVttDocument& captions,
                                double seconds) {
  video::Frame frame(width, height);
  frame.Fill(video::kOmega.y, video::kOmega.u, video::kOmega.v);
  const video::Yuv text_color{235, 128, 128};  // White.
  int scale = std::max(1, height / 180);
  for (const video::WebVttCue* cue : captions.ActiveAt(seconds)) {
    int text_w = TextWidth(cue->text, scale);
    int x = static_cast<int>(cue->position_percent / 100.0 * width) - text_w / 2;
    int y = static_cast<int>(cue->line_percent / 100.0 * height) -
            TextHeight(scale) / 2;
    DrawText(frame, cue->text, x, y, scale, text_color);
  }
  return frame;
}

std::vector<uint8_t> SerializeDetections(
    const std::vector<std::vector<Detection>>& per_frame) {
  ByteWriter writer;
  writer.U32(static_cast<uint32_t>(per_frame.size()));
  for (const auto& detections : per_frame) {
    writer.U32(static_cast<uint32_t>(detections.size()));
    for (const Detection& d : detections) {
      writer.U8(static_cast<uint8_t>(d.object_class));
      writer.I32(d.box.x0);
      writer.I32(d.box.y0);
      writer.I32(d.box.x1);
      writer.I32(d.box.y1);
      writer.F64(d.score);
      writer.I32(d.entity_id);
    }
  }
  return writer.Take();
}

StatusOr<std::vector<std::vector<Detection>>> ParseDetections(
    const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  uint32_t frame_count = cursor.U32();
  std::vector<std::vector<Detection>> per_frame;
  per_frame.reserve(frame_count);
  for (uint32_t f = 0; f < frame_count; ++f) {
    uint32_t count = cursor.U32();
    std::vector<Detection> detections;
    detections.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Detection d;
      d.object_class = static_cast<sim::ObjectClass>(cursor.U8());
      d.box = {cursor.I32(), cursor.I32(), cursor.I32(), cursor.I32()};
      d.score = cursor.F64();
      d.entity_id = cursor.I32();
      detections.push_back(d);
    }
    per_frame.push_back(std::move(detections));
    if (!cursor.ok()) return Status::DataLoss("truncated detection payload");
  }
  if (!cursor.ok()) return Status::DataLoss("truncated detection payload");
  return per_frame;
}

}  // namespace visualroad::vision
