#include "vision/convnet.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace visualroad::vision {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               uint64_t seed)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      weights_(static_cast<size_t>(out_channels) * in_channels * kernel * kernel),
      bias_(out_channels) {
  Pcg32 rng = SubStream(seed, "conv-weights");
  double scale = std::sqrt(2.0 / (in_channels * kernel * kernel));
  for (float& w : weights_) w = static_cast<float>(rng.NextGaussian(0.0, scale));
  for (float& b : bias_) b = static_cast<float>(rng.NextGaussian(0.0, 0.01));
}

Tensor Conv2d::Forward(const Tensor& input) const {
  int pad = kernel_ / 2;
  int out_h = (input.height() + 2 * pad - kernel_) / stride_ + 1;
  int out_w = (input.width() + 2 * pad - kernel_) / stride_ + 1;
  Tensor output(out_channels_, out_h, out_w);

  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        float acc = bias_[oc];
        int base_y = oy * stride_ - pad;
        int base_x = ox * stride_ - pad;
        for (int ic = 0; ic < in_channels_; ++ic) {
          const float* in_channel = input.Channel(ic);
          const float* w = &weights_[((static_cast<size_t>(oc) * in_channels_ + ic) *
                                      kernel_) *
                                     kernel_];
          for (int ky = 0; ky < kernel_; ++ky) {
            int iy = base_y + ky;
            if (iy < 0 || iy >= input.height()) continue;
            const float* row = in_channel + static_cast<size_t>(iy) * input.width();
            for (int kx = 0; kx < kernel_; ++kx) {
              int ix = base_x + kx;
              if (ix < 0 || ix >= input.width()) continue;
              acc += w[ky * kernel_ + kx] * row[ix];
            }
          }
        }
        output.At(oc, oy, ox) = acc;
      }
    }
  }
  return output;
}

int64_t Conv2d::MacsFor(int height, int width) const {
  int out_h = height / stride_, out_w = width / stride_;
  return static_cast<int64_t>(out_channels_) * in_channels_ * kernel_ * kernel_ *
         out_h * out_w;
}

Tensor MaxPool2x2(const Tensor& input) {
  int out_h = input.height() / 2, out_w = input.width() / 2;
  Tensor output(input.channels(), out_h, out_w);
  for (int c = 0; c < input.channels(); ++c) {
    for (int y = 0; y < out_h; ++y) {
      for (int x = 0; x < out_w; ++x) {
        float m = input.At(c, y * 2, x * 2);
        m = std::max(m, input.At(c, y * 2, x * 2 + 1));
        m = std::max(m, input.At(c, y * 2 + 1, x * 2));
        m = std::max(m, input.At(c, y * 2 + 1, x * 2 + 1));
        output.At(c, y, x) = m;
      }
    }
  }
  return output;
}

void LeakyRelu(Tensor& tensor) {
  for (float& v : tensor.data()) {
    if (v < 0) v *= 0.1f;
  }
}

}  // namespace visualroad::vision
