// Tensor is header-only; this translation unit exists so the build system
// has a home for future out-of-line additions.
#include "vision/tensor.h"
