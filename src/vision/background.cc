#include "vision/background.h"

#include <algorithm>

#include "video/image_ops.h"
#include "video/kernels/kernels.h"

namespace visualroad::vision {

namespace {

Status Validate(const video::Video& input, int m, double epsilon) {
  if (input.frames.empty()) return Status::InvalidArgument("empty input video");
  if (m < 1) return Status::InvalidArgument("window size must be positive");
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must lie in (0, 1)");
  }
  return Status::Ok();
}

/// Builds the mean frame from integer plane accumulators.
video::Frame MeanFromSums(const std::vector<uint32_t>& y_sum,
                          const std::vector<uint32_t>& u_sum,
                          const std::vector<uint32_t>& v_sum, int count, int width,
                          int height) {
  video::Frame mean(width, height);
  for (size_t i = 0; i < y_sum.size(); ++i) {
    mean.y_plane()[i] = static_cast<uint8_t>(y_sum[i] / count);
  }
  for (size_t i = 0; i < u_sum.size(); ++i) {
    mean.u_plane()[i] = static_cast<uint8_t>(u_sum[i] / count);
    mean.v_plane()[i] = static_cast<uint8_t>(v_sum[i] / count);
  }
  return mean;
}

}  // namespace

StatusOr<video::Video> MaskBackgroundRunning(const video::Video& input, int m,
                                             double epsilon) {
  VR_RETURN_IF_ERROR(Validate(input, m, epsilon));
  int n = input.FrameCount();
  int width = input.Width(), height = input.Height();

  std::vector<uint32_t> y_sum(input.frames[0].y_plane().size(), 0);
  std::vector<uint32_t> u_sum(input.frames[0].u_plane().size(), 0);
  std::vector<uint32_t> v_sum(input.frames[0].v_plane().size(), 0);

  // Signed adds on uint32 accumulators wrap exactly like the previous
  // int64-then-truncate formulation, so the vector kernel is bit-exact.
  const video::kernels::KernelTable& kt = video::kernels::Kernels();
  auto add = [&](const video::Frame& f, int sign) {
    kt.accumulate_row(f.y_plane().data(), static_cast<int>(f.y_plane().size()),
                      sign, y_sum.data());
    kt.accumulate_row(f.u_plane().data(), static_cast<int>(f.u_plane().size()),
                      sign, u_sum.data());
    kt.accumulate_row(f.v_plane().data(), static_cast<int>(f.v_plane().size()),
                      sign, v_sum.data());
    video::kernels::CountKernelCalls(video::kernels::Kernel::kAccumulateRow, 3);
  };

  // Prime the first window [0, min(m, n)).
  int window_end = std::min(m, n);
  for (int k = 0; k < window_end; ++k) add(input.frames[k], +1);
  int window_start = 0;

  video::Video out;
  out.fps = input.fps;
  out.frames.reserve(n);
  for (int j = 0; j < n; ++j) {
    // Slide the window so it covers [j, j+m) truncated at n.
    while (window_start < j) {
      add(input.frames[window_start], -1);
      ++window_start;
    }
    while (window_end < std::min(j + m, n)) {
      add(input.frames[window_end], +1);
      ++window_end;
    }
    int count = window_end - window_start;
    video::Frame background =
        MeanFromSums(y_sum, u_sum, v_sum, count, width, height);
    VR_ASSIGN_OR_RETURN(video::Frame masked,
                        video::MaskAgainstBackground(input.frames[j], background,
                                                     epsilon));
    out.frames.push_back(std::move(masked));
  }
  return out;
}

StatusOr<video::Video> MaskBackgroundNaive(const video::Video& input, int m,
                                           double epsilon) {
  VR_RETURN_IF_ERROR(Validate(input, m, epsilon));
  int n = input.FrameCount();
  video::Video out;
  out.fps = input.fps;
  out.frames.reserve(n);
  for (int j = 0; j < n; ++j) {
    std::vector<const video::Frame*> window;
    for (int k = j; k < std::min(j + m, n); ++k) window.push_back(&input.frames[k]);
    VR_ASSIGN_OR_RETURN(video::Frame background, video::MeanFrame(window));
    VR_ASSIGN_OR_RETURN(video::Frame masked,
                        video::MaskAgainstBackground(input.frames[j], background,
                                                     epsilon));
    out.frames.push_back(std::move(masked));
  }
  return out;
}

}  // namespace visualroad::vision
