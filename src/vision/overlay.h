#ifndef VISUALROAD_VISION_OVERLAY_H_
#define VISUALROAD_VISION_OVERLAY_H_

#include <vector>

#include "video/webvtt.h"
#include "vision/miniyolo.h"

namespace visualroad::vision {

/// Builds the Q2(c) output frame: each detection's rectangle filled with its
/// constant class colour, everything else the black sentinel omega.
video::Frame RenderDetectionFrame(int width, int height,
                                  const std::vector<Detection>& detections);

/// Renders the cues active at `seconds` into an omega-background frame sized
/// (width, height), honouring the line/position cue settings (Q6(b)).
video::Frame RenderCaptionFrame(int width, int height,
                                const video::WebVttDocument& captions,
                                double seconds);

/// Serialises detections for the VCD's "serialized sequence of bounding box
/// class identifiers and coordinates" Q6(a) input variant.
std::vector<uint8_t> SerializeDetections(
    const std::vector<std::vector<Detection>>& per_frame);

/// Parses a payload produced by SerializeDetections.
StatusOr<std::vector<std::vector<Detection>>> ParseDetections(
    const std::vector<uint8_t>& bytes);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_OVERLAY_H_
