#ifndef VISUALROAD_VISION_MINIYOLO_H_
#define VISUALROAD_VISION_MINIYOLO_H_

#include <cstdint>
#include <vector>

#include "simulation/ground_truth.h"
#include "vision/convnet.h"

namespace visualroad::vision {

/// One detected object.
struct Detection {
  sim::ObjectClass object_class = sim::ObjectClass::kVehicle;
  RectI box;
  double score = 0.0;
  /// The simulation entity this detection corresponds to; kNoEntity (-1) for
  /// false positives.
  int32_t entity_id = -1;
};

/// Detector behaviour knobs.
struct DetectorOptions {
  uint64_t seed = 17;
  /// Base probability of detecting a clearly visible object. Calibrated
  /// (with box_jitter) so AP@50 on benchmark video lands in the low-to-mid
  /// 70s, the YOLOv2 range Section 6.3.1 reports.
  double base_recall = 0.85;
  /// Expected false positives per frame.
  double false_positives_per_frame = 0.05;
  /// Relative box-corner jitter (fraction of box size, Gaussian sigma).
  double box_jitter = 0.10;
  /// Objects less visible than this are never detected.
  double min_visible_fraction = 0.20;
  /// Boxes smaller than this many pixels on a side are never detected.
  int min_box_pixels = 4;
  /// Network input resolution. 96 is the reference configuration; engines
  /// with heavier frameworks run larger inputs (more real arithmetic per
  /// frame), cascade engines run smaller cheap models.
  int input_size = 96;
};

/// The YOLO substitute (see DESIGN.md). The network is a real multi-layer
/// CNN executed over every input frame — four 3x3 convolution stages with
/// pooling and a 1x1 detection head, all computed with genuine arithmetic so
/// query runtimes carry a realistic per-frame inference cost. Detections are
/// produced by fusing the head's grid activations with simulation ground
/// truth through a calibrated noise model (misses for small/occluded objects,
/// localisation jitter, occasional false positives), reproducing YOLOv2-like
/// accuracy (AP@50 in the low 70s) without pretrained weights.
class MiniYolo {
 public:
  explicit MiniYolo(const DetectorOptions& options = {});

  /// Runs the network and returns detections for one frame. `ground_truth`
  /// supplies the frame's actual scene content (empty for content-free
  /// video, e.g. noise); `frame_index` decorrelates the noise model across
  /// frames.
  std::vector<Detection> Detect(const video::Frame& frame,
                                const sim::FrameGroundTruth& ground_truth,
                                int frame_index) const;

  /// Runs only the CNN (no fusion); exposed for tests and FLOP benches.
  Tensor Forward(const video::Frame& frame) const;

  /// Multiply-accumulates per frame at the network's input resolution.
  int64_t MacsPerFrame() const;

  const DetectorOptions& options() const { return options_; }

 private:
  DetectorOptions options_;
  Conv2d conv1_;
  Conv2d conv2_;
  Conv2d conv3_;
  Conv2d conv4_;
  Conv2d head_;
};

/// Reference network input resolution.
inline constexpr int kDetectorInputSize = 96;

/// Class-colour mapping for Q2(c)'s box-fill output: each detected class has
/// a constant color c_j; undetected regions are the black sentinel.
video::Yuv ClassColor(sim::ObjectClass object_class);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_MINIYOLO_H_
