#ifndef VISUALROAD_VISION_TILING_H_
#define VISUALROAD_VISION_TILING_H_

#include <vector>

#include "common/status.h"
#include "video/codec/codec.h"
#include "video/frame.h"

namespace visualroad::vision {

/// Splits every frame of `input` into a grid of (tile_w x tile_h) regions
/// (Q3's Partition operator). Tiles are returned row-major; edge tiles may be
/// smaller when the resolution is not a multiple of the tile size.
StatusOr<std::vector<video::Video>> PartitionVideo(const video::Video& input,
                                                   int tile_w, int tile_h);

/// Reassembles row-major tiles produced by PartitionVideo back into full
/// frames.
StatusOr<video::Video> ReassembleTiles(const std::vector<video::Video>& tiles,
                                       int cols, int rows);

/// Q3's full Subquery: partition into (dx, dy) tiles, re-encode tile i at
/// bitrates[i % bitrates.size()] bits/second, decode, and reassemble. Returns
/// the reassembled video; `encoded_bytes_out` (optional) receives the total
/// encoded payload size.
StatusOr<video::Video> TiledReencode(const video::Video& input, int tile_w,
                                     int tile_h,
                                     const std::vector<int64_t>& bitrates,
                                     video::codec::Profile profile,
                                     int64_t* encoded_bytes_out = nullptr);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_TILING_H_
