#ifndef VISUALROAD_VISION_ALPR_H_
#define VISUALROAD_VISION_ALPR_H_

#include <string>

#include "common/geometry.h"
#include "common/status.h"
#include "video/frame.h"

namespace visualroad::vision {

/// Result of searching a region for a specific plate.
struct PlateSearchResult {
  bool found = false;
  double score = 0.0;  // Normalised cross-correlation in [-1, 1].
  RectI box;           // Best-matching window.
};

/// The OpenALPR substitute (see DESIGN.md): license plates are rasterised
/// into the scene with the library's built-in glyph font, and this
/// recogniser does genuine pixel-domain work against them.
///
/// Two operations are exposed:
///  - FindPlate: multi-scale sliding-window normalised cross-correlation of
///    a rendered template of a *known* plate string against a search region
///    (a matched filter, as ALPR systems use for watchlist search). This is
///    what Q8's recognition function L does.
///  - ReadPlate: best-effort OCR of an already-localised plate rectangle by
///    per-cell glyph correlation.
class PlateRecognizer {
 public:
  explicit PlateRecognizer(double match_threshold = 0.80)
      : match_threshold_(match_threshold) {}

  /// Searches `region` of `frame` for `plate`. The region is scanned at
  /// several template scales; a normalised correlation above the threshold
  /// counts as found.
  PlateSearchResult FindPlate(const video::Frame& frame, const RectI& region,
                              const std::string& plate) const;

  /// Reads the six characters of the plate inside `plate_box`.
  StatusOr<std::string> ReadPlate(const video::Frame& frame,
                                  const RectI& plate_box) const;

  double match_threshold() const { return match_threshold_; }

 private:
  double match_threshold_;
};

/// Renders the canonical luma template for a plate string at the given size
/// (the same 38x9 cell layout the simulator paints onto vehicles).
std::vector<float> RenderPlateTemplate(const std::string& plate, int width,
                                       int height);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_ALPR_H_
