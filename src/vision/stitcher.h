#ifndef VISUALROAD_VISION_STITCHER_H_
#define VISUALROAD_VISION_STITCHER_H_

#include <array>
#include <vector>

#include "common/status.h"
#include "simulation/camera.h"
#include "video/color.h"
#include "video/frame.h"

namespace visualroad::vision {

/// Stitches the four face frames of a panoramic rig into one
/// equirectangularly projected 360-degree frame (Q9). For every output pixel
/// the longitude/latitude is converted to a world direction, the face camera
/// whose optical axis is closest is selected, and the source is sampled
/// bilinearly. The 120-degree fields of view at 90-degree spacing guarantee
/// full coverage with overlap.
///
/// `faces[i]` must be the frame captured by `cameras[i]`; output longitude 0
/// (the image centre) faces `forward_yaw`.
StatusOr<video::Frame> StitchEquirect(const std::array<const video::Frame*, 4>& faces,
                                      const std::array<sim::Camera, 4>& cameras,
                                      int out_width, int out_height,
                                      double forward_yaw);

/// Stitches aligned face videos frame by frame.
StatusOr<video::Video> StitchEquirectVideo(
    const std::array<const video::Video*, 4>& faces,
    const std::array<sim::Camera, 4>& cameras, int out_width, int out_height,
    double forward_yaw);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_STITCHER_H_
