#ifndef VISUALROAD_VISION_CONVNET_H_
#define VISUALROAD_VISION_CONVNET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "vision/tensor.h"

namespace visualroad::vision {

/// A 3x3 (or 1x1) convolution layer with bias, optional stride, and
/// zero padding, executed as a straightforward direct convolution.
class Conv2d {
 public:
  /// Initialises He-style random weights from `seed` (deterministic).
  Conv2d(int in_channels, int out_channels, int kernel, int stride, uint64_t seed);

  Tensor Forward(const Tensor& input) const;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  /// Multiply-accumulate operations per forward pass of an input of the
  /// given spatial size — used for FLOP accounting in benches.
  int64_t MacsFor(int height, int width) const;

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  std::vector<float> weights_;  // [out][in][k][k]
  std::vector<float> bias_;
};

/// 2x2 max pooling with stride 2.
Tensor MaxPool2x2(const Tensor& input);

/// Leaky ReLU (slope 0.1), in place.
void LeakyRelu(Tensor& tensor);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_CONVNET_H_
