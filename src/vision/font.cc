#include "vision/font.h"

#include "common/glyphs.h"

namespace visualroad::vision {

int TextWidth(const std::string& text, int scale) {
  if (text.empty()) return 0;
  return static_cast<int>(text.size()) * (kGlyphWidth + 1) * scale - scale;
}

int TextHeight(int scale) { return kGlyphHeight * scale; }

void DrawText(video::Frame& frame, const std::string& text, int x, int y, int scale,
              const video::Yuv& color) {
  int cursor = x;
  for (char c : text) {
    for (int gy = 0; gy < kGlyphHeight; ++gy) {
      for (int gx = 0; gx < kGlyphWidth; ++gx) {
        if (!GlyphPixel(c, gx, gy)) continue;
        for (int sy = 0; sy < scale; ++sy) {
          for (int sx = 0; sx < scale; ++sx) {
            int px = cursor + gx * scale + sx;
            int py = y + gy * scale + sy;
            if (px < 0 || px >= frame.width() || py < 0 || py >= frame.height()) {
              continue;
            }
            frame.SetPixel(px, py, color.y, color.u, color.v);
          }
        }
      }
    }
    cursor += (kGlyphWidth + 1) * scale;
  }
}

}  // namespace visualroad::vision
