#include "vision/alpr.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/glyphs.h"

namespace visualroad::vision {

namespace {

/// The canonical plate layout: a 38x9 cell grid (1-cell border, six glyph
/// cells of 6 columns), matching the simulator's plate shader.
constexpr int kGridW = 38;
constexpr int kGridH = 9;

/// Value of the canonical template at grid cell (gx, gy): 1 = plate white,
/// 0 = glyph dark.
float TemplateCell(const std::string& plate, int gx, int gy) {
  if (gx >= 1 && gx < kGridW - 1 && gy >= 1 && gy < kGridH - 1) {
    int cell = (gx - 1) / 6;
    int col = (gx - 1) % 6;
    if (cell < 6 && col < kGlyphWidth &&
        GlyphPixel(plate[static_cast<size_t>(cell)], col, gy - 1)) {
      return 0.0f;
    }
  }
  return 1.0f;
}

/// Normalised cross-correlation between two 1-D profiles of length n.
double ProfileNcc(const double* a, const double* b, int n) {
  double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
  for (int i = 0; i < n; ++i) {
    sum_a += a[i];
    sum_b += b[i];
    sum_aa += a[i] * a[i];
    sum_bb += b[i] * b[i];
    sum_ab += a[i] * b[i];
  }
  double cov = sum_ab - sum_a * sum_b / n;
  double var_a = sum_aa - sum_a * sum_a / n;
  double var_b = sum_bb - sum_b * sum_b / n;
  if (var_a <= 1e-9 || var_b <= 1e-9) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

/// Two-band brightness profile of a plate's glyph interior: for each of the
/// 36 text columns, the plate-white fraction of the glyph's top half (rows
/// 0-3) and bottom half (rows 3-7) separately. Splitting vertically roughly
/// doubles the discriminative power over a flat column profile ('7' is dark
/// on top, 'L' at the bottom) while staying integral-image friendly.
std::array<std::array<double, 36>, 2> InteriorBandProfiles(
    const std::string& plate) {
  std::array<std::array<double, 36>, 2> profiles{};
  for (int gx = 0; gx < 36; ++gx) {
    int cell = gx / 6;
    int col = gx % 6;
    int dark_top = 0, dark_bottom = 0;
    for (int gy = 0; gy < kGlyphHeight; ++gy) {
      bool dark = col < kGlyphWidth &&
                  GlyphPixel(plate[static_cast<size_t>(cell)], col, gy);
      if (!dark) continue;
      if (gy < kGlyphHeight / 2) {
        ++dark_top;
      } else {
        ++dark_bottom;
      }
    }
    // Integer split: rows [0, 3) on top (3 rows), [3, 7) below (4 rows).
    profiles[0][static_cast<size_t>(gx)] =
        1.0 - static_cast<double>(dark_top) / (kGlyphHeight / 2);
    profiles[1][static_cast<size_t>(gx)] =
        1.0 - static_cast<double>(dark_bottom) / (kGlyphHeight - kGlyphHeight / 2);
  }
  return profiles;
}

/// Column-wise integral image of the luma plane: sums[y][x] = sum of column
/// x over rows [0, y). Lets any horizontal strip's column means be read in
/// O(1) per column.
std::vector<uint32_t> ColumnIntegral(const video::Frame& frame) {
  int w = frame.width(), h = frame.height();
  std::vector<uint32_t> sums(static_cast<size_t>(w) * (h + 1), 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      sums[static_cast<size_t>(y + 1) * w + x] =
          sums[static_cast<size_t>(y) * w + x] + frame.Y(x, y);
    }
  }
  return sums;
}

}  // namespace

std::vector<float> RenderPlateTemplate(const std::string& plate, int width,
                                       int height) {
  std::vector<float> tmpl(static_cast<size_t>(width) * height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Nearest-cell sampling of the canonical grid.
      int gx = std::min(kGridW - 1, x * kGridW / width);
      int gy = std::min(kGridH - 1, y * kGridH / height);
      tmpl[static_cast<size_t>(y) * width + x] = TemplateCell(plate, gx, gy);
    }
  }
  return tmpl;
}

PlateSearchResult PlateRecognizer::FindPlate(const video::Frame& frame,
                                             const RectI& region,
                                             const std::string& plate) const {
  PlateSearchResult best;
  if (plate.size() != 6) return best;
  RectI search = region.Clamp(frame.width(), frame.height());
  if (search.Empty()) return best;

  // Matched filtering on the glyph interior's two-band brightness profiles:
  // at the plate scales Q8 deals with (10-40px wide) individual glyph
  // columns approach one pixel, so the discriminative signal is the column
  // intensity sequence (split into the glyph's top and bottom halves), not
  // 2-D glyph shapes. A columnwise integral image makes every candidate
  // strip's profiles O(width) to extract, allowing an exhaustive
  // multi-scale stride-1 search.
  std::array<std::array<double, 36>, 2> grid_profiles = InteriorBandProfiles(plate);
  std::vector<uint32_t> integral = ColumnIntegral(frame);
  int frame_w = frame.width();

  std::vector<double> tmpl_profile, window_profile;
  for (int w = 9; w <= search.Width(); w += std::max(1, w / 10)) {
    int h = std::max(4, w * (kGridH - 2) / (kGridW - 2));
    if (h > search.Height()) continue;
    // Resample the 36-column band profiles to w columns, skipping the
    // inter-glyph gap columns: the gaps are identical on every plate, so
    // including them lets any plate (or any comb-like texture) correlate
    // with any other. Only glyph-bearing columns carry identity. The
    // concatenated template is [top-band columns, bottom-band columns].
    tmpl_profile.clear();
    std::vector<int> column_offsets;
    for (int x = 0; x < w; ++x) {
      int grid_column = std::min(35, x * 36 / w);
      if (grid_column % 6 == 5) continue;  // Gap column.
      tmpl_profile.push_back(grid_profiles[0][static_cast<size_t>(grid_column)]);
      column_offsets.push_back(x);
    }
    int n = static_cast<int>(column_offsets.size());
    if (n < 6) continue;
    for (int c = 0; c < n; ++c) {
      int grid_column =
          std::min(35, column_offsets[static_cast<size_t>(c)] * 36 / w);
      tmpl_profile.push_back(grid_profiles[1][static_cast<size_t>(grid_column)]);
    }
    window_profile.resize(static_cast<size_t>(2 * n));
    // The window's band split mirrors the glyph split (3 of 7 rows on top).
    int mid = std::max(1, h * (kGlyphHeight / 2) / kGlyphHeight);
    int y_stride = std::max(1, h / 3);
    for (int y = search.y0; y + h <= search.y1; y += y_stride) {
      for (int x = search.x0; x + w <= search.x1; ++x) {
        for (int c = 0; c < n; ++c) {
          int column = x + column_offsets[static_cast<size_t>(c)];
          uint32_t top = integral[static_cast<size_t>(y) * frame_w + column];
          uint32_t middle = integral[static_cast<size_t>(y + mid) * frame_w + column];
          uint32_t bottom = integral[static_cast<size_t>(y + h) * frame_w + column];
          window_profile[static_cast<size_t>(c)] =
              static_cast<double>(middle - top) / mid;
          window_profile[static_cast<size_t>(n + c)] =
              static_cast<double>(bottom - middle) / (h - mid);
        }
        double score =
            ProfileNcc(tmpl_profile.data(), window_profile.data(), 2 * n);
        if (score > best.score) {
          best.score = score;
          best.box = {x, y, x + w, y + h};
        }
      }
    }
  }
  best.found = best.score >= match_threshold_;
  return best;
}

StatusOr<std::string> PlateRecognizer::ReadPlate(const video::Frame& frame,
                                                 const RectI& plate_box) const {
  RectI box = plate_box.Clamp(frame.width(), frame.height());
  if (box.Width() < 8 || box.Height() < 3) {
    return Status::InvalidArgument("plate region too small to read");
  }
  // Resample the region onto the canonical grid.
  std::vector<double> grid(kGridW * kGridH, 0.0);
  for (int gy = 0; gy < kGridH; ++gy) {
    for (int gx = 0; gx < kGridW; ++gx) {
      double fx = box.x0 + (gx + 0.5) / kGridW * box.Width();
      double fy = box.y0 + (gy + 0.5) / kGridH * box.Height();
      int x = std::clamp(static_cast<int>(fx), 0, frame.width() - 1);
      int y = std::clamp(static_cast<int>(fy), 0, frame.height() - 1);
      grid[static_cast<size_t>(gy) * kGridW + gx] = frame.Y(x, y) / 255.0;
    }
  }
  // Binarise against the region mean.
  double mean = 0.0;
  for (double v : grid) mean += v;
  mean /= grid.size();

  static const char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string result(6, '?');
  for (int cell = 0; cell < 6; ++cell) {
    char best_char = '?';
    int best_error = INT32_MAX;
    for (char c : std::string(kAlphabet)) {
      int error = 0;
      for (int gy = 0; gy < kGlyphHeight; ++gy) {
        for (int col = 0; col < 6; ++col) {
          int gx = 1 + cell * 6 + col;
          bool observed_dark =
              grid[static_cast<size_t>(gy + 1) * kGridW + gx] < mean;
          bool template_dark = col < kGlyphWidth && GlyphPixel(c, col, gy);
          if (observed_dark != template_dark) ++error;
        }
      }
      if (error < best_error) {
        best_error = error;
        best_char = c;
      }
    }
    result[static_cast<size_t>(cell)] = best_char;
  }
  return result;
}

}  // namespace visualroad::vision
