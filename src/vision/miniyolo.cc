#include "vision/miniyolo.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "video/image_ops.h"

namespace visualroad::vision {

namespace {

/// Converts a frame into the network's 3xNxN input tensor (Y, U, V channels,
/// bilinearly resampled and normalised to [0, 1]).
Tensor FrameToInput(const video::Frame& frame, int size) {
  auto resized = video::BilinearResize(frame, size, size);
  Tensor input(3, size, size);
  if (!resized.ok()) return input;
  const video::Frame& f = *resized;
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      input.At(0, y, x) = f.Y(x, y) / 255.0f;
      input.At(1, y, x) = f.U(x, y) / 255.0f;
      input.At(2, y, x) = f.V(x, y) / 255.0f;
    }
  }
  return input;
}

}  // namespace

video::Yuv ClassColor(sim::ObjectClass object_class) {
  // Constant class colours (Section 4.1.1, Q2(c)); values chosen to survive
  // 4:2:0 chroma subsampling distinctly.
  switch (object_class) {
    case sim::ObjectClass::kVehicle:
      return {81, 90, 240};  // Red.
    case sim::ObjectClass::kPedestrian:
      return {145, 54, 34};  // Green.
  }
  return {128, 128, 128};
}

MiniYolo::MiniYolo(const DetectorOptions& options)
    : options_(options),
      conv1_(3, 8, 3, 1, options.seed ^ 0x01),
      conv2_(8, 16, 3, 1, options.seed ^ 0x02),
      conv3_(16, 24, 3, 1, options.seed ^ 0x03),
      conv4_(24, 32, 3, 1, options.seed ^ 0x04),
      head_(32, 8, 1, 1, options.seed ^ 0x05) {}

Tensor MiniYolo::Forward(const video::Frame& frame) const {
  Tensor t = FrameToInput(frame, options_.input_size);
  t = conv1_.Forward(t);
  LeakyRelu(t);
  t = MaxPool2x2(t);
  t = conv2_.Forward(t);
  LeakyRelu(t);
  t = MaxPool2x2(t);
  t = conv3_.Forward(t);
  LeakyRelu(t);
  t = MaxPool2x2(t);
  t = conv4_.Forward(t);
  LeakyRelu(t);
  return head_.Forward(t);  // 8 x 12 x 12 grid activations.
}

int64_t MiniYolo::MacsPerFrame() const {
  int s = options_.input_size;
  return conv1_.MacsFor(s, s) + conv2_.MacsFor(s / 2, s / 2) +
         conv3_.MacsFor(s / 4, s / 4) + conv4_.MacsFor(s / 8, s / 8) +
         head_.MacsFor(s / 8, s / 8);
}

std::vector<Detection> MiniYolo::Detect(const video::Frame& frame,
                                        const sim::FrameGroundTruth& ground_truth,
                                        int frame_index) const {
  // The expensive part: genuine CNN inference on the frame.
  Tensor grid = Forward(frame);

  std::vector<Detection> detections;
  int w = frame.width(), h = frame.height();

  for (const sim::GroundTruthBox& gt : ground_truth.boxes) {
    if (gt.visible_fraction < options_.min_visible_fraction) continue;
    if (gt.box.Width() < options_.min_box_pixels ||
        gt.box.Height() < options_.min_box_pixels) continue;

    // Per-(entity, frame) deterministic randomness.
    Pcg32 rng = SubStream(options_.seed,
                          gt.object_class == sim::ObjectClass::kVehicle ? "det-v"
                                                                        : "det-p",
                          (static_cast<uint64_t>(frame_index) << 20) ^
                              static_cast<uint64_t>(gt.entity_id));

    // Detection probability rises with visibility and size.
    double size_factor = std::min(
        1.0, (gt.box.Width() + gt.box.Height()) / (0.12 * (w + h)));
    double p = options_.base_recall * gt.visible_fraction *
               (0.55 + 0.45 * size_factor);
    if (!rng.NextBool(p)) continue;

    // Localisation jitter, proportional to object size.
    auto jitter = [&](int extent) {
      return static_cast<int>(
          std::lround(rng.NextGaussian(0.0, options_.box_jitter * extent)));
    };
    Detection det;
    det.object_class = gt.object_class;
    det.entity_id = gt.entity_id;
    det.box = RectI{gt.box.x0 + jitter(gt.box.Width()),
                    gt.box.y0 + jitter(gt.box.Height()),
                    gt.box.x1 + jitter(gt.box.Width()),
                    gt.box.y1 + jitter(gt.box.Height())}
                  .Clamp(w, h);
    if (det.box.Empty()) continue;

    // Confidence: blend the head activation at the box centre into the
    // score so the CNN output genuinely participates.
    int gx = std::clamp(((det.box.x0 + det.box.x1) / 2) * grid.width() / w, 0,
                        grid.width() - 1);
    int gy = std::clamp(((det.box.y0 + det.box.y1) / 2) * grid.height() / h, 0,
                        grid.height() - 1);
    double activation = std::tanh(std::abs(grid.At(0, gy, gx)));
    det.score = std::clamp(0.55 + 0.35 * gt.visible_fraction + 0.10 * activation +
                               rng.NextGaussian(0.0, 0.05),
                           0.05, 0.999);
    detections.push_back(det);
  }

  // False positives. Rates above one draw that many per frame (integer part
  // guaranteed, fractional part Bernoulli), so high-clutter configurations —
  // the regime where a cascade's cheap model stops being selective — are
  // expressible. Rates at or below one keep the original single-draw
  // behaviour bit for bit.
  Pcg32 fp_rng = SubStream(options_.seed, "det-fp", static_cast<uint64_t>(frame_index));
  double fp_rate = options_.false_positives_per_frame;
  int fp_count = static_cast<int>(fp_rate);
  if (fp_rng.NextBool(fp_rate - fp_count)) ++fp_count;
  for (int i = 0; i < fp_count; ++i) {
    Detection fp;
    fp.object_class =
        fp_rng.NextBool(0.5) ? sim::ObjectClass::kVehicle : sim::ObjectClass::kPedestrian;
    int bw = static_cast<int>(fp_rng.NextInt(w / 20 + 2, w / 6 + 4));
    int bh = static_cast<int>(fp_rng.NextInt(h / 20 + 2, h / 6 + 4));
    int x0 = static_cast<int>(fp_rng.NextBounded(std::max(1, w - bw)));
    int y0 = static_cast<int>(fp_rng.NextBounded(std::max(1, h - bh)));
    fp.box = RectI{x0, y0, x0 + bw, y0 + bh}.Clamp(w, h);
    fp.score = fp_rng.NextDouble(0.3, 0.6);
    fp.entity_id = -1;
    if (!fp.box.Empty()) detections.push_back(fp);
  }

  // Highest confidence first, as detector APIs conventionally return.
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  return detections;
}

}  // namespace visualroad::vision
