#include "vision/tiling.h"

#include <algorithm>

#include "video/image_ops.h"

namespace visualroad::vision {

StatusOr<std::vector<video::Video>> PartitionVideo(const video::Video& input,
                                                   int tile_w, int tile_h) {
  if (input.frames.empty()) return Status::InvalidArgument("empty input video");
  if (tile_w < 1 || tile_h < 1) {
    return Status::InvalidArgument("tile dimensions must be positive");
  }
  int width = input.Width(), height = input.Height();
  int cols = (width + tile_w - 1) / tile_w;
  int rows = (height + tile_h - 1) / tile_h;

  std::vector<video::Video> tiles(static_cast<size_t>(cols) * rows);
  for (auto& tile : tiles) tile.fps = input.fps;

  for (const video::Frame& frame : input.frames) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        RectI rect{c * tile_w, r * tile_h, std::min((c + 1) * tile_w, width),
                   std::min((r + 1) * tile_h, height)};
        VR_ASSIGN_OR_RETURN(video::Frame cropped, video::Crop(frame, rect));
        tiles[static_cast<size_t>(r) * cols + c].frames.push_back(std::move(cropped));
      }
    }
  }
  return tiles;
}

StatusOr<video::Video> ReassembleTiles(const std::vector<video::Video>& tiles,
                                       int cols, int rows) {
  if (cols < 1 || rows < 1 ||
      tiles.size() != static_cast<size_t>(cols) * static_cast<size_t>(rows)) {
    return Status::InvalidArgument("tile grid shape does not match tile count");
  }
  size_t frame_count = tiles[0].frames.size();
  for (const video::Video& tile : tiles) {
    if (tile.frames.size() != frame_count) {
      return Status::InvalidArgument("tiles disagree on frame count");
    }
  }
  // Output size: sum of first-row widths x sum of first-column heights.
  int width = 0;
  for (int c = 0; c < cols; ++c) width += tiles[static_cast<size_t>(c)].Width();
  int height = 0;
  for (int r = 0; r < rows; ++r) {
    height += tiles[static_cast<size_t>(r) * cols].Height();
  }

  video::Video out;
  out.fps = tiles[0].fps;
  out.frames.reserve(frame_count);
  for (size_t f = 0; f < frame_count; ++f) {
    video::Frame frame(width, height);
    int y_offset = 0;
    for (int r = 0; r < rows; ++r) {
      int x_offset = 0;
      int row_height = tiles[static_cast<size_t>(r) * cols].Height();
      for (int c = 0; c < cols; ++c) {
        const video::Frame& tile = tiles[static_cast<size_t>(r) * cols + c].frames[f];
        for (int y = 0; y < tile.height(); ++y) {
          for (int x = 0; x < tile.width(); ++x) {
            frame.SetPixel(x_offset + x, y_offset + y, tile.Y(x, y), tile.U(x, y),
                           tile.V(x, y));
          }
        }
        x_offset += tile.width();
      }
      y_offset += row_height;
    }
    out.frames.push_back(std::move(frame));
  }
  return out;
}

StatusOr<video::Video> TiledReencode(const video::Video& input, int tile_w,
                                     int tile_h,
                                     const std::vector<int64_t>& bitrates,
                                     video::codec::Profile profile,
                                     int64_t* encoded_bytes_out) {
  if (bitrates.empty()) return Status::InvalidArgument("no tile bitrates given");
  VR_ASSIGN_OR_RETURN(std::vector<video::Video> tiles,
                      PartitionVideo(input, tile_w, tile_h));
  int cols = (input.Width() + tile_w - 1) / tile_w;
  int rows = (input.Height() + tile_h - 1) / tile_h;

  int64_t total_bytes = 0;
  std::vector<video::Video> decoded;
  decoded.reserve(tiles.size());
  for (size_t i = 0; i < tiles.size(); ++i) {
    video::codec::EncoderConfig config;
    config.profile = profile;
    config.target_bitrate_bps = bitrates[i % bitrates.size()];
    config.qp = 30;  // Starting point; the rate controller converges from here.
    VR_ASSIGN_OR_RETURN(video::codec::EncodedVideo encoded,
                        video::codec::Encode(tiles[i], config));
    total_bytes += encoded.TotalBytes();
    VR_ASSIGN_OR_RETURN(video::Video tile_decoded, video::codec::Decode(encoded));
    tile_decoded.fps = input.fps;
    decoded.push_back(std::move(tile_decoded));
  }
  if (encoded_bytes_out != nullptr) *encoded_bytes_out = total_bytes;
  return ReassembleTiles(decoded, cols, rows);
}

}  // namespace visualroad::vision
