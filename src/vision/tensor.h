#ifndef VISUALROAD_VISION_TENSOR_H_
#define VISUALROAD_VISION_TENSOR_H_

#include <cstddef>
#include <vector>

namespace visualroad::vision {

/// A dense CHW float tensor — the value type of the CNN inference engine.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int channels, int height, int width)
      : channels_(channels),
        height_(height),
        width_(width),
        data_(static_cast<size_t>(channels) * height * width, 0.0f) {}

  int channels() const { return channels_; }
  int height() const { return height_; }
  int width() const { return width_; }
  size_t size() const { return data_.size(); }

  float At(int c, int y, int x) const {
    return data_[(static_cast<size_t>(c) * height_ + y) * width_ + x];
  }
  float& At(int c, int y, int x) {
    return data_[(static_cast<size_t>(c) * height_ + y) * width_ + x];
  }
  const float* Channel(int c) const {
    return &data_[static_cast<size_t>(c) * height_ * width_];
  }
  float* Channel(int c) { return &data_[static_cast<size_t>(c) * height_ * width_]; }
  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  int channels_ = 0;
  int height_ = 0;
  int width_ = 0;
  std::vector<float> data_;
};

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_TENSOR_H_
