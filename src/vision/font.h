#ifndef VISUALROAD_VISION_FONT_H_
#define VISUALROAD_VISION_FONT_H_

#include <string>

#include "video/color.h"
#include "video/frame.h"

namespace visualroad::vision {

/// Pixel width of `text` rendered at `scale` (glyphs are 5x7 with a
/// one-column gap).
int TextWidth(const std::string& text, int scale);

/// Pixel height of text rendered at `scale`.
int TextHeight(int scale);

/// Draws `text` into `frame` with its top-left corner at (x, y) using the
/// built-in 5x7 font scaled by `scale`. Out-of-frame pixels are clipped.
void DrawText(video::Frame& frame, const std::string& text, int x, int y, int scale,
              const video::Yuv& color);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_FONT_H_
