#include "vision/stitcher.h"

#include <algorithm>
#include <cmath>

namespace visualroad::vision {

namespace {

/// Bilinear luma/chroma sample with edge clamping.
video::Yuv SampleBilinear(const video::Frame& frame, double fx, double fy) {
  fx = std::clamp(fx, 0.0, static_cast<double>(frame.width() - 1));
  fy = std::clamp(fy, 0.0, static_cast<double>(frame.height() - 1));
  int x0 = static_cast<int>(fx), y0 = static_cast<int>(fy);
  int x1 = std::min(x0 + 1, frame.width() - 1);
  int y1 = std::min(y0 + 1, frame.height() - 1);
  double ax = fx - x0, ay = fy - y0;
  auto blend = [&](auto get) -> uint8_t {
    double v = get(x0, y0) * (1 - ax) * (1 - ay) + get(x1, y0) * ax * (1 - ay) +
               get(x0, y1) * (1 - ax) * ay + get(x1, y1) * ax * ay;
    return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
  };
  return {blend([&](int x, int y) { return frame.Y(x, y); }),
          blend([&](int x, int y) { return frame.U(x, y); }),
          blend([&](int x, int y) { return frame.V(x, y); })};
}

}  // namespace

StatusOr<video::Frame> StitchEquirect(const std::array<const video::Frame*, 4>& faces,
                                      const std::array<sim::Camera, 4>& cameras,
                                      int out_width, int out_height,
                                      double forward_yaw) {
  for (const video::Frame* face : faces) {
    if (face == nullptr || face->Empty()) {
      return Status::InvalidArgument("stitcher requires four non-empty faces");
    }
  }
  if (out_width <= 0 || out_height <= 0) {
    return Status::InvalidArgument("invalid panorama resolution");
  }

  video::Frame out(out_width, out_height);
  for (int y = 0; y < out_height; ++y) {
    // Latitude from +pi/2 (top) to -pi/2 (bottom).
    double lat = kPi / 2.0 - (y + 0.5) / out_height * kPi;
    for (int x = 0; x < out_width; ++x) {
      // Longitude from -pi to +pi around the forward yaw.
      double lon = forward_yaw + (x + 0.5) / out_width * 2.0 * kPi - kPi;
      Vec3 dir{std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon),
               std::sin(lat)};

      // Select the face whose optical axis is most aligned.
      int best_face = 0;
      double best_dot = -2.0;
      for (int f = 0; f < 4; ++f) {
        double d = dir.Dot(cameras[static_cast<size_t>(f)].forward());
        if (d > best_dot) {
          best_dot = d;
          best_face = f;
        }
      }
      const sim::Camera& camera = cameras[static_cast<size_t>(best_face)];
      // Project the direction through the face camera.
      Vec3 cam{dir.Dot(camera.right()), dir.Dot(camera.up()),
               dir.Dot(camera.forward())};
      video::Yuv sample{0, 128, 128};
      if (cam.z > 1e-6) {
        double focal = camera.intrinsics().Focal();
        double px = camera.intrinsics().width / 2.0 + focal * cam.x / cam.z;
        double py = camera.intrinsics().height / 2.0 - focal * cam.y / cam.z;
        sample = SampleBilinear(*faces[static_cast<size_t>(best_face)], px, py);
      }
      out.SetPixel(x, y, sample.y, sample.u, sample.v);
    }
  }
  return out;
}

StatusOr<video::Video> StitchEquirectVideo(
    const std::array<const video::Video*, 4>& faces,
    const std::array<sim::Camera, 4>& cameras, int out_width, int out_height,
    double forward_yaw) {
  size_t frame_count = SIZE_MAX;
  for (const video::Video* face : faces) {
    if (face == nullptr) return Status::InvalidArgument("missing face video");
    frame_count = std::min(frame_count, face->frames.size());
  }
  if (frame_count == 0 || frame_count == SIZE_MAX) {
    return Status::InvalidArgument("empty face videos");
  }
  video::Video out;
  out.fps = faces[0]->fps;
  out.frames.reserve(frame_count);
  for (size_t i = 0; i < frame_count; ++i) {
    std::array<const video::Frame*, 4> frame_faces{
        &faces[0]->frames[i], &faces[1]->frames[i], &faces[2]->frames[i],
        &faces[3]->frames[i]};
    VR_ASSIGN_OR_RETURN(video::Frame stitched,
                        StitchEquirect(frame_faces, cameras, out_width, out_height,
                                       forward_yaw));
    out.frames.push_back(std::move(stitched));
  }
  return out;
}

}  // namespace visualroad::vision
