#ifndef VISUALROAD_VISION_BACKGROUND_H_
#define VISUALROAD_VISION_BACKGROUND_H_

#include "common/status.h"
#include "video/frame.h"

namespace visualroad::vision {

/// Q2(d) background masking: for each frame f_j, the background reference is
/// the mean of the m-frame window starting at j (truncated at the end of the
/// video), and pixels whose relative difference from the reference is below
/// epsilon become the black sentinel omega.
///
/// Two implementations produce identical output with different cost
/// profiles; the engines deliberately pick different ones (see
/// systems/*_engine.cc):
///  - Running: maintains per-pixel window sums incrementally, O(pixels) per
///    frame regardless of m.
///  - Naive: recomputes the window mean from scratch per frame, O(m*pixels).
StatusOr<video::Video> MaskBackgroundRunning(const video::Video& input, int m,
                                             double epsilon);
StatusOr<video::Video> MaskBackgroundNaive(const video::Video& input, int m,
                                           double epsilon);

}  // namespace visualroad::vision

#endif  // VISUALROAD_VISION_BACKGROUND_H_
