#ifndef VISUALROAD_SIMULATION_TILE_H_
#define VISUALROAD_SIMULATION_TILE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "simulation/entity.h"
#include "simulation/road_network.h"
#include "simulation/weather.h"

namespace visualroad::sim {

/// Density levels for a tile's vehicle/pedestrian population (Section 5:
/// three densities; "rush hour" is the heaviest).
enum class Density {
  kLow = 0,
  kMedium = 1,
  kRushHour = 2,
};

/// One archetype of the tile pool. Visual Road 1.0's pool contains 72 tiles:
/// 2 towns x 12 weather configurations x 3 densities (Section 5).
struct TileArchetype {
  int id = 0;
  Town town = Town::kTown01;
  int weather_id = 0;
  Density density = Density::kLow;
};

/// Number of archetypes in the pool (2 * 12 * 3 = 72).
inline constexpr int kTilePoolSize = 72;

/// Returns archetype `id` in [0, kTilePoolSize).
TileArchetype TilePoolEntry(int id);

/// Vehicle/pedestrian counts for a density level.
int VehicleCount(Density density);
int PedestrianCount(Density density);

/// A live tile: static geometry (roads, buildings) plus a dynamic population
/// of vehicles and pedestrians advanced by Step(). All generation is driven
/// by a named substream of the dataset seed, so identical seeds reproduce
/// identical tiles and trajectories.
class Tile {
 public:
  /// Builds a tile from an archetype. `instance_seed` distinguishes repeated
  /// draws of the same archetype within one city.
  Tile(const TileArchetype& archetype, uint64_t instance_seed);

  const TileArchetype& archetype() const { return archetype_; }
  const RoadNetwork& roads() const { return roads_; }
  const Weather& weather() const { return weather_; }
  const std::vector<Building>& buildings() const { return buildings_; }
  const std::vector<Vehicle>& vehicles() const { return vehicles_; }
  const std::vector<Pedestrian>& pedestrians() const { return pedestrians_; }

  /// Advances the simulation by `dt` seconds: vehicles follow lanes and turn
  /// at intersections, pedestrians walk sidewalks; both wrap toroidally.
  void Step(double dt);

  /// Current simulation time in seconds.
  double time() const { return time_; }

 private:
  void SpawnBuildings();
  void SpawnVehicles(int count);
  void SpawnPedestrians(int count);

  TileArchetype archetype_;
  RoadNetwork roads_;
  Weather weather_;
  Pcg32 rng_;
  std::vector<Building> buildings_;
  std::vector<Vehicle> vehicles_;
  std::vector<Pedestrian> pedestrians_;
  double time_ = 0.0;
};

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_TILE_H_
