#ifndef VISUALROAD_SIMULATION_RECORDED_CORPUS_H_
#define VISUALROAD_SIMULATION_RECORDED_CORPUS_H_

#include "common/status.h"
#include "simulation/generator.h"

namespace visualroad::sim {

/// Parameters for the "recorded corpus" — this repository's stand-in for the
/// UA-DETRAC real-video baseline of Section 6.1 (see DESIGN.md). Videos are
/// produced through a deliberately different path from the VCG: fixed
/// roadside viewpoints, per-pixel sensor noise, exposure wobble, and
/// handheld-style camera jitter, so the corpus is statistically distinct from
/// Visual Road output the way real footage is, while remaining temporally
/// coherent, annotated video.
struct RecordedCorpusConfig {
  int video_count = 4;
  int width = 320;
  int height = 180;
  double duration_seconds = 3.0;
  double fps = 15.0;
  uint64_t seed = 99;
  /// Standard deviation of the per-pixel additive sensor noise (luma units).
  double sensor_noise_stddev = 2.2;
  /// Peak frame-to-frame exposure gain wobble (multiplicative).
  double exposure_wobble = 0.05;
  /// Peak camera jitter in radians (yaw/pitch per frame).
  double jitter_radians = 0.0035;
};

/// Generates the recorded corpus. Assets carry ground truth exactly like VCG
/// output, so the same driver and queries run over both.
StatusOr<Dataset> GenerateRecordedCorpus(
    const RecordedCorpusConfig& config,
    const video::codec::EncoderConfig& codec_config);

/// Builds the "duplicates" negative-control corpus of Section 6.1: the first
/// video of `source` replicated `count` times.
Dataset MakeDuplicateCorpus(const Dataset& source, int count);

/// Builds the "random" negative-control corpus of Section 6.1: videos of pure
/// noise matched in count/resolution/duration to `like`.
StatusOr<Dataset> MakeRandomCorpus(const Dataset& like,
                                   const video::codec::EncoderConfig& codec_config,
                                   uint64_t seed);

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_RECORDED_CORPUS_H_
