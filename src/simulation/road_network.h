#ifndef VISUALROAD_SIMULATION_ROAD_NETWORK_H_
#define VISUALROAD_SIMULATION_ROAD_NETWORK_H_

#include <vector>

#include "common/geometry.h"

namespace visualroad::sim {

/// Surface classification of a ground-plane point within a tile.
enum class SurfaceKind {
  kGrass = 0,
  kRoad,
  kLaneMarking,
  kSidewalk,
  kIntersection,
};

/// Town layouts, mirroring the paper's two CARLA maps (Section 5): TOWN01 is
/// a dense downtown lattice, TOWN02 a sparser suburban one.
enum class Town {
  kTown01 = 0,
  kTown02 = 1,
};

/// A rectilinear road lattice on a square tile. Roads run the full tile in
/// both axes at fixed centrelines; each road has two lanes (one per
/// direction) and sidewalks on both sides.
class RoadNetwork {
 public:
  explicit RoadNetwork(Town town);

  Town town() const { return town_; }
  /// Tile edge length in metres.
  double tile_size() const { return tile_size_; }
  /// Road half-width in metres (lane edge from the centreline).
  double road_half_width() const { return road_half_width_; }
  /// Sidewalk outer edge distance from the road centreline.
  double sidewalk_outer() const { return sidewalk_outer_; }
  /// Lane-centre offset from the road centreline.
  double lane_offset() const { return lane_offset_; }
  /// Road centreline coordinates (shared by the x and y axes).
  const std::vector<double>& road_lines() const { return road_lines_; }

  /// Classifies the surface at a ground point.
  SurfaceKind Classify(const Vec2& p) const;

  /// True when `p` lies on any road (including intersections).
  bool OnRoad(const Vec2& p) const;

  /// True when `p` lies within an intersection box.
  bool InIntersection(const Vec2& p) const;

  /// Nearest road centreline coordinate to `v` (used to snap spawns).
  double NearestRoadLine(double v) const;

  /// Wraps a coordinate into [0, tile_size) toroidally. Entities that drive
  /// off one tile edge re-enter on the opposite edge, which keeps densities
  /// stationary over arbitrarily long simulations.
  double Wrap(double v) const;

 private:
  Town town_;
  double tile_size_;
  double road_half_width_;
  double sidewalk_outer_;
  double lane_offset_;
  std::vector<double> road_lines_;
};

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_ROAD_NETWORK_H_
