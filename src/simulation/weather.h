#ifndef VISUALROAD_SIMULATION_WEATHER_H_
#define VISUALROAD_SIMULATION_WEATHER_H_

#include <string>

namespace visualroad::sim {

/// An environmental configuration for one tile. Visual Road 1.0 pairs every
/// tile with one of twelve weather configurations (Section 5); these mirror
/// CARLA's preset list (clear/cloudy/wet/rain x noon/sunset, plus heavy
/// variants).
struct Weather {
  int id = 0;
  std::string name;
  /// Fraction of the sky covered by clouds, [0, 1].
  double cloud_cover = 0.0;
  /// Rain intensity, [0, 1]; drives streak count and road darkening.
  double precipitation = 0.0;
  /// Sun altitude above the horizon in degrees; low values = sunset light.
  double sun_altitude_deg = 60.0;
  /// Sun azimuth in degrees (0 = east of the tile).
  double sun_azimuth_deg = 140.0;
  /// Exponential fog density per metre (also models haze).
  double fog_density = 0.0015;
};

/// Number of weather presets in this version of the benchmark.
inline constexpr int kWeatherCount = 12;

/// Returns preset `id` in [0, kWeatherCount).
const Weather& WeatherPreset(int id);

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_WEATHER_H_
