#ifndef VISUALROAD_SIMULATION_RENDER_SCENE_RENDERER_H_
#define VISUALROAD_SIMULATION_RENDER_SCENE_RENDERER_H_

#include <cstdint>

#include "simulation/render/rasterizer.h"
#include "simulation/tile.h"

namespace visualroad::sim {

/// Entity-id buffer encoding. Ids below 1000 are reserved.
inline constexpr int32_t kVehicleIdBase = 1000;
inline constexpr int32_t kPedestrianIdBase = 2000;
inline constexpr int32_t kBuildingIdBase = 3000;

/// True when `id` denotes a vehicle (resp. pedestrian).
inline bool IsVehicleId(int32_t id) {
  return id >= kVehicleIdBase && id < kPedestrianIdBase;
}
inline bool IsPedestrianId(int32_t id) {
  return id >= kPedestrianIdBase && id < kBuildingIdBase;
}

/// Unit vector toward the sun for a weather configuration.
Vec3 SunDirection(const Weather& weather);

/// Rendering switches. Weather effects can be disabled for tests that need
/// pixel-deterministic geometry without precipitation overlays.
struct RenderOptions {
  bool weather_effects = true;
};

/// Renders the tile's current state as seen by `camera`.
///
/// This is the CARLA/Unreal substitute: a z-buffered software rasteriser
/// that shades sky (sun position, procedural clouds), ground (roads, lane
/// markings, sidewalks, grass), buildings (procedural window facades),
/// vehicles (with readable license plates), and pedestrians, then applies
/// weather overlays (fog by depth, rain streaks, sunset exposure). The
/// returned framebuffer carries a per-pixel entity-id channel from which
/// exact, occlusion-aware ground truth is extracted.
///
/// `frame_index` seeds per-frame stochastic effects (rain) so they decorrelate
/// across frames; `seed` pins the whole stream deterministically.
Framebuffer RenderScene(const Tile& tile, const Camera& camera, int frame_index,
                        uint64_t seed, const RenderOptions& options = {});

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_RENDER_SCENE_RENDERER_H_
