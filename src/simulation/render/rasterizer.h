#ifndef VISUALROAD_SIMULATION_RENDER_RASTERIZER_H_
#define VISUALROAD_SIMULATION_RENDER_RASTERIZER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "simulation/camera.h"
#include "video/color.h"
#include "video/frame.h"

namespace visualroad::sim {

/// Entity id written into the id buffer for non-entity geometry.
inline constexpr int32_t kNoEntity = -1;

/// A render target: color, a float z-buffer (camera-space forward depth),
/// and an entity-id buffer. The id buffer is what makes semantic ground
/// truth "free": per-pixel occlusion-aware object visibility falls out of
/// ordinary z-buffered rasterisation.
struct Framebuffer {
  int width = 0;
  int height = 0;
  video::RgbImage color;
  std::vector<float> depth;
  std::vector<int32_t> ids;

  Framebuffer(int w, int h);

  /// Resets color to black, depth to +inf, ids to kNoEntity.
  void Clear();

  size_t Index(int x, int y) const { return static_cast<size_t>(y) * width + x; }
};

/// A world-space vertex with texture coordinates.
struct RasterVertex {
  Vec3 position;
  double u = 0.0;
  double v = 0.0;
};

/// Per-fragment shading callback; receives perspective-correct (u, v).
using FragmentShader = std::function<video::Rgb(double u, double v)>;

/// Z-buffered triangle rasteriser with near-plane clipping and
/// perspective-correct attribute interpolation.
class Rasterizer {
 public:
  Rasterizer(Framebuffer& framebuffer, const Camera& camera)
      : fb_(framebuffer), camera_(camera) {}

  /// Rasterises one world-space triangle.
  void DrawTriangle(const RasterVertex& a, const RasterVertex& b,
                    const RasterVertex& c, const FragmentShader& shader, int32_t id);

  /// Rasterises a quad (split into two triangles). Vertices in ring order.
  void DrawQuad(const RasterVertex v[4], const FragmentShader& shader, int32_t id);

  /// Draws an axis-aligned cuboid [min, max] with flat per-face shading.
  /// `face_color(face_normal, u, v)` is invoked per fragment.
  void DrawCuboid(const Vec3& min_corner, const Vec3& max_corner,
                  const std::function<video::Rgb(const Vec3& normal, double u,
                                                 double v)>& face_color,
                  int32_t id);

 private:
  struct ClippedVertex {
    Vec3 cam;  // Camera-space position.
    double u, v;
  };

  void DrawClipped(const ClippedVertex& a, const ClippedVertex& b,
                   const ClippedVertex& c, const FragmentShader& shader, int32_t id);

  Framebuffer& fb_;
  const Camera& camera_;
};

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_RENDER_RASTERIZER_H_
