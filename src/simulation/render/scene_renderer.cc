#include "simulation/render/scene_renderer.h"

#include <algorithm>
#include <cmath>

#include "common/glyphs.h"
#include "common/random.h"

namespace visualroad::sim {

namespace {

using video::Rgb;

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}

Rgb Scale(const Rgb& c, double f) {
  return {ClampByte(c.r * f), ClampByte(c.g * f), ClampByte(c.b * f)};
}

Rgb Lerp(const Rgb& a, const Rgb& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  return {ClampByte(a.r + (b.r - a.r) * t), ClampByte(a.g + (b.g - a.g) * t),
          ClampByte(a.b + (b.b - a.b) * t)};
}

/// Hash-based lattice value noise in [0, 1], bilinear between lattice points.
double ValueNoise(double x, double y, uint64_t seed) {
  auto lattice = [seed](int64_t ix, int64_t iy) -> double {
    uint64_t h = seed;
    h ^= static_cast<uint64_t>(ix) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(iy) * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return static_cast<double>(h & 0xFFFFFF) / static_cast<double>(0xFFFFFF);
  };
  int64_t ix = static_cast<int64_t>(std::floor(x));
  int64_t iy = static_cast<int64_t>(std::floor(y));
  double fx = x - ix, fy = y - iy;
  double n00 = lattice(ix, iy), n10 = lattice(ix + 1, iy);
  double n01 = lattice(ix, iy + 1), n11 = lattice(ix + 1, iy + 1);
  return (n00 * (1 - fx) + n10 * fx) * (1 - fy) + (n01 * (1 - fx) + n11 * fx) * fy;
}

/// Two-octave fractal noise in [0, 1].
double FractalNoise(double x, double y, uint64_t seed) {
  return 0.65 * ValueNoise(x, y, seed) + 0.35 * ValueNoise(x * 2.7, y * 2.7, seed ^ 7);
}

/// Global light level and tint from sun altitude and cloud cover.
struct Lighting {
  double brightness;
  Rgb tint;     // Applied multiplicatively (255 = neutral).
  Vec3 sun_dir;
  double diffuse;  // Directional light share, reduced by clouds.
};

Lighting ComputeLighting(const Weather& weather) {
  Lighting light;
  light.sun_dir = SunDirection(weather);
  double altitude = std::max(0.0, weather.sun_altitude_deg);
  light.brightness = 0.50 + 0.50 * std::min(1.0, altitude / 40.0);
  light.brightness *= 1.0 - 0.25 * weather.cloud_cover;
  double sunset = std::clamp(1.0 - altitude / 25.0, 0.0, 1.0);
  light.tint = Lerp({255, 255, 255}, {255, 196, 150}, sunset);
  light.diffuse = (1.0 - 0.7 * weather.cloud_cover);
  return light;
}

Rgb ApplyLight(const Rgb& base, const Lighting& light, double lambert) {
  double shade = light.brightness * (0.45 + 0.55 * lambert * light.diffuse + 0.55 * (1.0 - light.diffuse) * 0.5);
  return {ClampByte(base.r * shade * light.tint.r / 255.0),
          ClampByte(base.g * shade * light.tint.g / 255.0),
          ClampByte(base.b * shade * light.tint.b / 255.0)};
}

/// Sky color for a view direction.
Rgb SkyColor(const Vec3& dir, const Weather& weather, const Lighting& light,
             uint64_t seed) {
  double elevation = std::clamp(dir.z, -0.1, 1.0);
  double sunset = std::clamp(1.0 - weather.sun_altitude_deg / 25.0, 0.0, 1.0);
  Rgb zenith = Lerp({92, 140, 210}, {120, 90, 130}, sunset);
  Rgb horizon = Lerp({190, 210, 230}, {245, 160, 90}, sunset);
  Rgb sky = Lerp(horizon, zenith, std::pow(std::max(0.0, elevation), 0.6));

  // Procedural clouds: noise over a cylindrical parameterisation.
  double az = std::atan2(dir.y, dir.x);
  double cloud_noise =
      FractalNoise(az * 3.0 + 10.0, elevation * 8.0 + 3.0, seed ^ 0xC10D);
  double threshold = 1.0 - weather.cloud_cover;
  double cloudiness = std::clamp((cloud_noise - threshold) * 4.0, 0.0, 1.0);
  Rgb cloud = Lerp({230, 230, 235}, {140, 140, 150}, weather.precipitation);
  sky = Lerp(sky, cloud, cloudiness * 0.9);

  // Sun glow.
  double sun_dot = std::max(0.0, dir.Dot(light.sun_dir));
  double glow = std::pow(sun_dot, 256.0) + 0.3 * std::pow(sun_dot, 8.0);
  glow *= (1.0 - 0.8 * weather.cloud_cover);
  Rgb sun_color = Lerp({255, 250, 230}, {255, 170, 110}, sunset);
  sky = Lerp(sky, sun_color, std::min(1.0, glow));
  return Scale(sky, 0.75 + 0.25 * light.brightness);
}

/// Ground color at a world point.
Rgb GroundColor(const Tile& tile, const Vec2& p, const Weather& weather,
                const Lighting& light, uint64_t seed) {
  Rgb base;
  switch (tile.roads().Classify(p)) {
    case SurfaceKind::kRoad:
    case SurfaceKind::kIntersection:
      base = {58, 58, 62};
      // Wet roads darken and pick up a blue sheen.
      base = Lerp(base, {30, 36, 52}, weather.precipitation * 0.8);
      break;
    case SurfaceKind::kLaneMarking:
      base = {205, 203, 188};
      break;
    case SurfaceKind::kSidewalk:
      base = {138, 134, 126};
      break;
    case SurfaceKind::kGrass:
      base = {64, 98, 52};
      break;
  }
  double texture = 0.88 + 0.24 * FractalNoise(p.x * 0.8, p.y * 0.8, seed ^ 0x601D);
  base = Scale(base, texture);
  double lambert = std::max(0.0, light.sun_dir.z);
  return ApplyLight(base, light, lambert);
}

/// Draws the license plate as a textured quad on the vehicle's front face.
void DrawPlate(Rasterizer& raster, const Vehicle& vehicle, const Lighting& light,
               int32_t id) {
  // Plate centred on the front face at the mount height (see entity.h for
  // the deliberately resolution-scaled dimensions).
  Vec2 fwd2 = vehicle.Forward();
  Vec3 forward{fwd2.x, fwd2.y, 0.0};
  Vec3 lateral{-fwd2.y, fwd2.x, 0.0};
  Vec3 centre{vehicle.position.x, vehicle.position.y, kPlateMountHeight};
  Vec3 face_centre = centre + forward * (vehicle.length / 2.0 + 0.02);
  Vec3 half_w = lateral * (kPlateWidth / 2.0);
  Vec3 half_h{0.0, 0.0, kPlateHeight / 2.0};

  RasterVertex quad[4];
  quad[0] = {face_centre - half_w - half_h, 0.0, 1.0};
  quad[1] = {face_centre + half_w - half_h, 1.0, 1.0};
  quad[2] = {face_centre + half_w + half_h, 1.0, 0.0};
  quad[3] = {face_centre - half_w + half_h, 0.0, 0.0};

  const std::string plate = vehicle.plate;
  auto shader = [&plate, &light](double u, double v) -> Rgb {
    // 6 glyph cells of 6 columns (5 px + 1 space) in a 38x9 grid with a
    // 1-px border.
    const int grid_w = 38, grid_h = 9;
    int gx = static_cast<int>(u * grid_w);
    int gy = static_cast<int>(v * grid_h);
    bool dark = false;
    if (gx >= 1 && gx < grid_w - 1 && gy >= 1 && gy < grid_h - 1) {
      int cell = (gx - 1) / 6;
      int col = (gx - 1) % 6;
      if (cell < 6 && col < kGlyphWidth) {
        dark = GlyphPixel(plate[cell], col, gy - 1);
      }
    }
    Rgb base = dark ? Rgb{20, 20, 28} : Rgb{235, 235, 240};
    return ApplyLight(base, light, 0.8);
  };
  raster.DrawQuad(quad, shader, id);
}

void DrawVehicle(Rasterizer& raster, const Vehicle& vehicle, const Lighting& light) {
  int32_t id = kVehicleIdBase + vehicle.id;
  // Axis-aligned body: vehicles travel along lattice axes, so their boxes
  // stay axis-aligned.
  double hl = vehicle.length / 2.0, hw = vehicle.width / 2.0;
  Vec2 p = vehicle.position;
  Vec3 body_lo, body_hi;
  if (vehicle.axis == Axis::kX) {
    body_lo = {p.x - hl, p.y - hw, 0.18};
    body_hi = {p.x + hl, p.y + hw, 0.95};
  } else {
    body_lo = {p.x - hw, p.y - hl, 0.18};
    body_hi = {p.x + hw, p.y + hl, 0.95};
  }
  Rgb color = vehicle.body_color;
  auto body_shader = [color, &light](const Vec3& normal, double, double) {
    double lambert = std::max(0.0, normal.Dot(light.sun_dir));
    return ApplyLight(color, light, lambert);
  };
  raster.DrawCuboid(body_lo, body_hi, body_shader, id);

  // Cabin: a shorter, darker, glassier box over the middle.
  Vec3 cabin_lo = body_lo, cabin_hi = body_hi;
  double shrink = vehicle.length * 0.22;
  if (vehicle.axis == Axis::kX) {
    cabin_lo.x += shrink;
    cabin_hi.x -= shrink;
  } else {
    cabin_lo.y += shrink;
    cabin_hi.y -= shrink;
  }
  cabin_lo.z = 0.95;
  cabin_hi.z = vehicle.height;
  Rgb glass = Lerp(color, {40, 60, 80}, 0.7);
  auto cabin_shader = [glass, &light](const Vec3& normal, double, double) {
    double lambert = std::max(0.0, normal.Dot(light.sun_dir));
    return ApplyLight(glass, light, lambert);
  };
  raster.DrawCuboid(cabin_lo, cabin_hi, cabin_shader, id);

  DrawPlate(raster, vehicle, light, id);
}

void DrawPedestrian(Rasterizer& raster, const Pedestrian& pedestrian,
                    const Lighting& light) {
  int32_t id = kPedestrianIdBase + pedestrian.id;
  Vec2 p = pedestrian.position;
  double hw = pedestrian.width / 2.0;
  double torso_top = pedestrian.height * 0.82;
  Rgb clothing = pedestrian.clothing_color;
  auto torso_shader = [clothing, &light](const Vec3& normal, double, double) {
    double lambert = std::max(0.0, normal.Dot(light.sun_dir));
    return ApplyLight(clothing, light, lambert);
  };
  raster.DrawCuboid({p.x - hw, p.y - hw * 0.6, 0.0}, {p.x + hw, p.y + hw * 0.6, torso_top},
                    torso_shader, id);
  Rgb skin{200, 165, 140};
  auto head_shader = [skin, &light](const Vec3& normal, double, double) {
    double lambert = std::max(0.0, normal.Dot(light.sun_dir));
    return ApplyLight(skin, light, lambert);
  };
  double hr = hw * 0.5;
  raster.DrawCuboid({p.x - hr, p.y - hr, torso_top},
                    {p.x + hr, p.y + hr, pedestrian.height}, head_shader, id);
}

void DrawBuilding(Rasterizer& raster, const Building& building, int index,
                  const Lighting& light, uint64_t seed) {
  int32_t id = kBuildingIdBase + index;
  Rgb facade = building.facade_color;
  double spacing = building.window_spacing;
  Vec2 size = building.max_corner - building.min_corner;
  double height = building.height;
  auto shader = [facade, &light, spacing, size, height, seed](const Vec3& normal,
                                                              double u, double v) {
    double lambert = std::max(0.0, normal.Dot(light.sun_dir));
    // Procedural window grid on vertical faces.
    if (std::abs(normal.z) < 0.5) {
      double face_w = std::abs(normal.x) > 0.5 ? size.y : size.x;
      double wx = u * face_w, wz = (1.0 - v) * height;
      double mx = std::fmod(wx, spacing), mz = std::fmod(wz, spacing);
      bool window = mx > spacing * 0.3 && mx < spacing * 0.8 && mz > spacing * 0.35 &&
                    mz < spacing * 0.85 && wz > 1.0;
      if (window) {
        // Some windows are lit, keyed on the window's lattice cell.
        double lit = ValueNoise(std::floor(wx / spacing) * 13.1,
                                std::floor(wz / spacing) * 7.7, seed ^ 0x111);
        Rgb glass = lit > 0.82 ? Rgb{240, 220, 140} : Rgb{70, 90, 110};
        return ApplyLight(glass, light, lambert * 0.6 + 0.3);
      }
    }
    return ApplyLight(facade, light, lambert);
  };
  raster.DrawCuboid({building.min_corner.x, building.min_corner.y, 0.0},
                    {building.max_corner.x, building.max_corner.y, building.height},
                    shader, id);
}

}  // namespace

Vec3 SunDirection(const Weather& weather) {
  double alt = DegToRad(weather.sun_altitude_deg);
  double az = DegToRad(weather.sun_azimuth_deg);
  return Vec3{std::cos(alt) * std::cos(az), std::cos(alt) * std::sin(az),
              std::sin(alt)}
      .Normalized();
}

Framebuffer RenderScene(const Tile& tile, const Camera& camera, int frame_index,
                        uint64_t seed, const RenderOptions& options) {
  const CameraIntrinsics& intr = camera.intrinsics();
  Framebuffer fb(intr.width, intr.height);
  const Weather& weather = tile.weather();
  Lighting light = ComputeLighting(weather);

  // Pass 1: sky and ground, per pixel (ray cast against the z=0 plane).
  const Vec3& origin = camera.pose().position;
  for (int y = 0; y < fb.height; ++y) {
    for (int x = 0; x < fb.width; ++x) {
      Vec3 dir = camera.PixelRay(x + 0.5, y + 0.5);
      size_t idx = fb.Index(x, y);
      Rgb rgb;
      if (dir.z < -1e-5) {
        double t = -origin.z / dir.z;
        Vec3 hit = origin + dir * t;
        double depth = static_cast<float>((hit - origin).Dot(camera.forward()));
        rgb = GroundColor(tile, {hit.x, hit.y}, weather, light, seed);
        fb.depth[idx] = static_cast<float>(depth);
      } else {
        rgb = SkyColor(dir, weather, light, seed);
        // Sky stays at infinite depth.
      }
      uint8_t* pixel = fb.color.Pixel(x, y);
      pixel[0] = rgb.r;
      pixel[1] = rgb.g;
      pixel[2] = rgb.b;
    }
  }

  // Pass 2: geometry.
  Rasterizer raster(fb, camera);
  for (size_t i = 0; i < tile.buildings().size(); ++i) {
    DrawBuilding(raster, tile.buildings()[i], static_cast<int>(i), light, seed);
  }
  for (const Vehicle& vehicle : tile.vehicles()) {
    DrawVehicle(raster, vehicle, light);
  }
  for (const Pedestrian& pedestrian : tile.pedestrians()) {
    DrawPedestrian(raster, pedestrian, light);
  }

  if (!options.weather_effects) return fb;

  // Pass 3: fog by depth.
  if (weather.fog_density > 0.0) {
    Rgb fog_color = Lerp({200, 205, 215}, {150, 150, 160}, weather.precipitation);
    fog_color = Scale(fog_color, 0.6 + 0.4 * light.brightness);
    for (int y = 0; y < fb.height; ++y) {
      for (int x = 0; x < fb.width; ++x) {
        float depth = fb.depth[fb.Index(x, y)];
        if (!std::isfinite(depth)) continue;
        double factor = 1.0 - std::exp(-weather.fog_density * depth);
        uint8_t* pixel = fb.color.Pixel(x, y);
        Rgb blended = Lerp({pixel[0], pixel[1], pixel[2]}, fog_color, factor);
        pixel[0] = blended.r;
        pixel[1] = blended.g;
        pixel[2] = blended.b;
      }
    }
  }

  // Pass 4: rain streaks, re-randomised per frame.
  if (weather.precipitation > 0.02) {
    Pcg32 rain = SubStream(seed ^ 0xBAD5EED, "rain", static_cast<uint64_t>(frame_index));
    int streaks = static_cast<int>(weather.precipitation * fb.width * fb.height / 220.0);
    int length = std::max(3, fb.height / 24);
    for (int s = 0; s < streaks; ++s) {
      int sx = static_cast<int>(rain.NextBounded(static_cast<uint32_t>(fb.width)));
      int sy = static_cast<int>(rain.NextBounded(static_cast<uint32_t>(fb.height)));
      int slant = static_cast<int>(rain.NextBounded(3)) - 1;
      for (int k = 0; k < length; ++k) {
        int px = sx + (k * slant) / length;
        int py = sy + k;
        if (px < 0 || px >= fb.width || py < 0 || py >= fb.height) break;
        uint8_t* pixel = fb.color.Pixel(px, py);
        Rgb blended = Lerp({pixel[0], pixel[1], pixel[2]}, {220, 225, 235}, 0.35);
        pixel[0] = blended.r;
        pixel[1] = blended.g;
        pixel[2] = blended.b;
      }
    }
  }

  return fb;
}

}  // namespace visualroad::sim
