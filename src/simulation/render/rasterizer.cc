#include "simulation/render/rasterizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "video/kernels/kernels.h"

namespace visualroad::sim {

namespace {
constexpr double kNearPlane = 0.2;

/// Pixels handed to the span kernel per batch; bounds the stack scratch.
constexpr int kSpanChunk = 64;
}  // namespace

Framebuffer::Framebuffer(int w, int h)
    : width(w),
      height(h),
      color(w, h),
      depth(static_cast<size_t>(w) * h, std::numeric_limits<float>::infinity()),
      ids(static_cast<size_t>(w) * h, kNoEntity) {}

void Framebuffer::Clear() {
  std::fill(color.data.begin(), color.data.end(), 0);
  std::fill(depth.begin(), depth.end(), std::numeric_limits<float>::infinity());
  std::fill(ids.begin(), ids.end(), kNoEntity);
}

void Rasterizer::DrawTriangle(const RasterVertex& a, const RasterVertex& b,
                              const RasterVertex& c, const FragmentShader& shader,
                              int32_t id) {
  ClippedVertex verts[3] = {{camera_.ToCamera(a.position), a.u, a.v},
                            {camera_.ToCamera(b.position), b.u, b.v},
                            {camera_.ToCamera(c.position), c.u, c.v}};

  // Sutherland-Hodgman clip against the near plane (z = kNearPlane).
  ClippedVertex poly[4];
  int count = 0;
  for (int i = 0; i < 3; ++i) {
    const ClippedVertex& current = verts[i];
    const ClippedVertex& next = verts[(i + 1) % 3];
    bool current_in = current.cam.z >= kNearPlane;
    bool next_in = next.cam.z >= kNearPlane;
    if (current_in) poly[count++] = current;
    if (current_in != next_in) {
      double t = (kNearPlane - current.cam.z) / (next.cam.z - current.cam.z);
      ClippedVertex clipped;
      clipped.cam = current.cam + (next.cam - current.cam) * t;
      clipped.u = current.u + (next.u - current.u) * t;
      clipped.v = current.v + (next.v - current.v) * t;
      poly[count++] = clipped;
    }
  }
  if (count < 3) return;
  DrawClipped(poly[0], poly[1], poly[2], shader, id);
  if (count == 4) DrawClipped(poly[0], poly[2], poly[3], shader, id);
}

void Rasterizer::DrawClipped(const ClippedVertex& a, const ClippedVertex& b,
                             const ClippedVertex& c, const FragmentShader& shader,
                             int32_t id) {
  double focal = camera_.intrinsics().Focal();
  double half_w = fb_.width / 2.0, half_h = fb_.height / 2.0;

  struct Screen {
    double x, y, inv_z, u_over_z, v_over_z;
  };
  auto to_screen = [&](const ClippedVertex& vertex) -> Screen {
    double inv_z = 1.0 / vertex.cam.z;
    return {half_w + focal * vertex.cam.x * inv_z,
            half_h - focal * vertex.cam.y * inv_z, inv_z, vertex.u * inv_z,
            vertex.v * inv_z};
  };
  Screen s0 = to_screen(a), s1 = to_screen(b), s2 = to_screen(c);

  double min_x = std::min({s0.x, s1.x, s2.x});
  double max_x = std::max({s0.x, s1.x, s2.x});
  double min_y = std::min({s0.y, s1.y, s2.y});
  double max_y = std::max({s0.y, s1.y, s2.y});
  int x0 = std::max(0, static_cast<int>(std::floor(min_x)));
  int x1 = std::min(fb_.width - 1, static_cast<int>(std::ceil(max_x)));
  int y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  int y1 = std::min(fb_.height - 1, static_cast<int>(std::ceil(max_y)));
  if (x0 > x1 || y0 > y1) return;

  double area = (s1.x - s0.x) * (s2.y - s0.y) - (s2.x - s0.x) * (s1.y - s0.y);
  if (std::abs(area) < 1e-9) return;
  double inv_area = 1.0 / area;

  // The coverage test, depth interpolation, and perspective-correct (u, v)
  // run batched through the span kernel; the z-buffer test and shader apply
  // stay here, visiting passing pixels in the same left-to-right order as the
  // per-pixel loop did.
  video::kernels::SpanSetup setup{s0.x,      s0.y,       s1.x,       s1.y,
                                  s2.x,      s2.y,       inv_area,   s0.inv_z,
                                  s1.inv_z,  s2.inv_z,   s0.u_over_z,
                                  s1.u_over_z, s2.u_over_z, s0.v_over_z,
                                  s1.v_over_z, s2.v_over_z};
  const video::kernels::KernelTable& kt = video::kernels::Kernels();
  uint8_t valid[kSpanChunk];
  float depth[kSpanChunk];
  double u[kSpanChunk], v[kSpanChunk];
  uint64_t spans = 0;
  for (int y = y0; y <= y1; ++y) {
    double py = y + 0.5;
    for (int x = x0; x <= x1; x += kSpanChunk) {
      int n = std::min(kSpanChunk, x1 - x + 1);
      kt.raster_span(setup, py, x, n, valid, depth, u, v);
      ++spans;
      for (int i = 0; i < n; ++i) {
        if (!valid[i]) continue;
        size_t idx = fb_.Index(x + i, y);
        if (depth[i] >= fb_.depth[idx]) continue;
        video::Rgb rgb = shader(u[i], v[i]);
        uint8_t* pixel = fb_.color.Pixel(x + i, y);
        pixel[0] = rgb.r;
        pixel[1] = rgb.g;
        pixel[2] = rgb.b;
        fb_.depth[idx] = depth[i];
        fb_.ids[idx] = id;
      }
    }
  }
  video::kernels::CountKernelCalls(video::kernels::Kernel::kRasterSpan, spans);
}

void Rasterizer::DrawQuad(const RasterVertex v[4], const FragmentShader& shader,
                          int32_t id) {
  DrawTriangle(v[0], v[1], v[2], shader, id);
  DrawTriangle(v[0], v[2], v[3], shader, id);
}

void Rasterizer::DrawCuboid(
    const Vec3& min_corner, const Vec3& max_corner,
    const std::function<video::Rgb(const Vec3& normal, double u, double v)>&
        face_color,
    int32_t id) {
  const Vec3& lo = min_corner;
  const Vec3& hi = max_corner;
  struct Face {
    Vec3 corners[4];
    Vec3 normal;
  };
  const Face faces[] = {
      // +x face.
      {{{hi.x, lo.y, lo.z}, {hi.x, hi.y, lo.z}, {hi.x, hi.y, hi.z}, {hi.x, lo.y, hi.z}},
       {1, 0, 0}},
      // -x face.
      {{{lo.x, hi.y, lo.z}, {lo.x, lo.y, lo.z}, {lo.x, lo.y, hi.z}, {lo.x, hi.y, hi.z}},
       {-1, 0, 0}},
      // +y face.
      {{{hi.x, hi.y, lo.z}, {lo.x, hi.y, lo.z}, {lo.x, hi.y, hi.z}, {hi.x, hi.y, hi.z}},
       {0, 1, 0}},
      // -y face.
      {{{lo.x, lo.y, lo.z}, {hi.x, lo.y, lo.z}, {hi.x, lo.y, hi.z}, {lo.x, lo.y, hi.z}},
       {0, -1, 0}},
      // Top (+z) face.
      {{{lo.x, lo.y, hi.z}, {hi.x, lo.y, hi.z}, {hi.x, hi.y, hi.z}, {lo.x, hi.y, hi.z}},
       {0, 0, 1}},
  };
  for (const Face& face : faces) {
    // Back-face cull: skip faces pointing away from the camera.
    Vec3 to_camera = camera_.pose().position - face.corners[0];
    if (to_camera.Dot(face.normal) <= 0) continue;
    RasterVertex quad[4];
    for (int i = 0; i < 4; ++i) {
      quad[i].position = face.corners[i];
      // UVs span each face: u along the first edge, v along the second.
      quad[i].u = (i == 1 || i == 2) ? 1.0 : 0.0;
      quad[i].v = (i == 2 || i == 3) ? 1.0 : 0.0;
    }
    Vec3 normal = face.normal;
    DrawQuad(
        quad, [&face_color, normal](double u, double v) { return face_color(normal, u, v); },
        id);
  }
}

}  // namespace visualroad::sim
