#ifndef VISUALROAD_SIMULATION_ENTITY_H_
#define VISUALROAD_SIMULATION_ENTITY_H_

#include <array>
#include <string>

#include "common/geometry.h"
#include "common/random.h"
#include "video/color.h"

namespace visualroad::sim {

/// Object classes that queries can ask about (Table 3: O = {Pedestrian,
/// Vehicle}).
enum class ObjectClass {
  kVehicle = 0,
  kPedestrian = 1,
};

/// Returns "vehicle" or "pedestrian".
const char* ObjectClassName(ObjectClass cls);

/// Axis of travel for lattice-bound entities.
enum class Axis { kX, kY };

/// A simulated automobile. Every vehicle carries a unique front-facing
/// license plate of six random alphanumeric digits (Section 4.2.1, Q8).
struct Vehicle {
  int id = 0;
  std::string plate;  // Exactly six characters from [A-Z0-9].
  video::Rgb body_color;
  // Dimensions in metres.
  double length = 4.5;
  double width = 1.8;
  double height = 1.5;
  // Kinematic state. Vehicles travel along road lanes.
  Vec2 position;        // Centre of the vehicle on the ground plane.
  Axis axis = Axis::kX; // Axis of travel.
  int direction = 1;    // +1 or -1 along the axis.
  double speed = 10.0;  // m/s.

  /// Unit forward vector on the ground plane.
  Vec2 Forward() const {
    return axis == Axis::kX ? Vec2{static_cast<double>(direction), 0.0}
                            : Vec2{0.0, static_cast<double>(direction)};
  }
  /// Heading angle in radians (0 = +x).
  double Heading() const;
};

/// A simulated pedestrian walking along sidewalks.
struct Pedestrian {
  int id = 0;
  video::Rgb clothing_color;
  double height = 1.72;
  double width = 0.5;
  Vec2 position;
  Axis axis = Axis::kX;
  int direction = 1;
  double speed = 1.4;  // m/s.
};

/// A static building: an axis-aligned cuboid footprint with a facade color.
struct Building {
  Vec2 min_corner;  // Footprint corners on the ground plane, metres.
  Vec2 max_corner;
  double height = 12.0;
  video::Rgb facade_color;
  /// Procedural window grid parameters.
  double window_spacing = 3.0;
};

/// Draws a six-character plate string uniformly from [A-Z0-9]^6.
std::string RandomPlate(Pcg32& rng);

/// License plate geometry (metres). Oversized relative to a real plate as a
/// deliberate accommodation of this reproduction's proportionally reduced
/// camera resolutions: the paper renders at up to 3840x2160, where a real
/// 0.5m plate spans enough pixels to read; at our scaled resolutions the
/// plate is scaled up by the same factor so the recognition task presents
/// the same pixel footprint (see DESIGN.md).
inline constexpr double kPlateWidth = 1.15;
inline constexpr double kPlateHeight = 0.30;
inline constexpr double kPlateMountHeight = 0.55;

/// Minimum projected plate size (pixels) for the plate to count as
/// "identifiable" in ground truth — the Q8 visibility condition. Matched to
/// what the ALPR recogniser can resolve: it correlates a rendered template of
/// the queried plate against the plate region, which stays discriminative
/// down to ~10 pixels of plate width (full blind OCR would need more).
inline constexpr int kPlateMinPixelWidth = 10;
inline constexpr int kPlateMinPixelHeight = 3;

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_ENTITY_H_
