#include "simulation/recorded_corpus.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "video/color.h"

namespace visualroad::sim {

namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}

/// Applies sensor artefacts in place: additive Gaussian noise and a global
/// exposure gain.
void ApplySensorModel(video::RgbImage& image, double noise_stddev, double gain,
                      Pcg32& rng) {
  for (uint8_t& sample : image.data) {
    double value = sample * gain + rng.NextGaussian(0.0, noise_stddev);
    sample = ClampByte(value);
  }
}

}  // namespace

StatusOr<Dataset> GenerateRecordedCorpus(
    const RecordedCorpusConfig& config,
    const video::codec::EncoderConfig& codec_config) {
  if (config.video_count < 1) {
    return Status::InvalidArgument("recorded corpus needs at least one video");
  }
  Dataset dataset;
  dataset.config.width = config.width;
  dataset.config.height = config.height;
  dataset.config.fps = config.fps;
  dataset.config.duration_seconds = config.duration_seconds;
  dataset.config.seed = config.seed;
  dataset.config.scale_factor = std::max(1, config.video_count / 4);

  int frame_count = static_cast<int>(config.duration_seconds * config.fps + 0.5);
  double dt = 1.0 / config.fps;

  for (int v = 0; v < config.video_count; ++v) {
    Pcg32 rng = SubStream(config.seed, "recorded", static_cast<uint64_t>(v));
    // Each recording gets its own scene (a random archetype) and a fixed
    // roadside viewpoint: lower and closer than Visual Road traffic cameras,
    // the way UA-DETRAC's pole-mounted recordings sit.
    TileArchetype archetype = TilePoolEntry(static_cast<int>(rng.NextBounded(kTilePoolSize)));
    Tile tile(archetype, config.seed ^ (static_cast<uint64_t>(v) << 24));

    const RoadNetwork& roads = tile.roads();
    double line = roads.road_lines()[rng.NextBounded(
        static_cast<uint32_t>(roads.road_lines().size()))];
    double along = rng.NextDouble(30.0, roads.tile_size() - 30.0);

    CameraPlacement placement;
    placement.camera_id = v;
    placement.tile_index = 0;
    placement.kind = CameraKind::kTraffic;
    placement.fov_deg = 58.0;
    placement.pose.position = {along, line + rng.NextDouble(7.0, 10.0),
                               rng.NextDouble(6.0, 9.0)};
    placement.pose.yaw = -kPi / 2.0 + rng.NextDouble(-0.4, 0.4);
    placement.pose.pitch = rng.NextDouble(-0.5, -0.3);

    VR_ASSIGN_OR_RETURN(
        video::codec::Encoder encoder,
        video::codec::Encoder::Create(config.width, config.height, codec_config));

    VideoAsset asset;
    asset.camera = placement;
    asset.container.video.profile = codec_config.profile;
    asset.container.video.width = config.width;
    asset.container.video.height = config.height;
    asset.container.video.fps = config.fps;

    double wobble_phase = rng.NextDouble(0.0, 2.0 * kPi);
    for (int f = 0; f < frame_count; ++f) {
      tile.Step(dt);
      // Handheld-style jitter: the pose wanders slightly every frame.
      CameraPlacement jittered = placement;
      jittered.pose.yaw += rng.NextGaussian(0.0, config.jitter_radians);
      jittered.pose.pitch += rng.NextGaussian(0.0, config.jitter_radians);
      Camera camera = jittered.MakeCamera(config.width, config.height);

      Framebuffer fb = RenderScene(tile, camera, f, config.seed ^ 0x0DE7EC7);
      double gain =
          1.0 + config.exposure_wobble * std::sin(wobble_phase + f * 0.21) +
          rng.NextGaussian(0.0, config.exposure_wobble * 0.2);
      ApplySensorModel(fb.color, config.sensor_noise_stddev, gain, rng);

      video::Frame frame = video::RgbToFrame(fb.color);
      VR_ASSIGN_OR_RETURN(video::codec::EncodedFrame encoded,
                          encoder.EncodeFrame(frame));
      asset.container.video.frames.push_back(std::move(encoded));
      asset.ground_truth.push_back(ExtractGroundTruth(tile, camera, fb));
    }
    asset.container.tracks.push_back(video::container::MetadataTrack{
        "GTRU", SerializeGroundTruth(asset.ground_truth)});
    dataset.assets.push_back(std::move(asset));
  }
  return dataset;
}

Dataset MakeDuplicateCorpus(const Dataset& source, int count) {
  Dataset dataset;
  dataset.config = source.config;
  if (source.assets.empty() || count < 1) return dataset;
  const VideoAsset& original = source.assets.front();
  dataset.assets.reserve(count);
  for (int i = 0; i < count; ++i) {
    VideoAsset copy = original;
    copy.camera.camera_id = i;
    dataset.assets.push_back(std::move(copy));
  }
  return dataset;
}

StatusOr<Dataset> MakeRandomCorpus(const Dataset& like,
                                   const video::codec::EncoderConfig& codec_config,
                                   uint64_t seed) {
  Dataset dataset;
  dataset.config = like.config;
  for (size_t v = 0; v < like.assets.size(); ++v) {
    const VideoAsset& reference = like.assets[v];
    int width = reference.container.video.width;
    int height = reference.container.video.height;
    int frame_count = reference.container.video.FrameCount();

    Pcg32 rng = SubStream(seed, "random-corpus", v);
    VR_ASSIGN_OR_RETURN(video::codec::Encoder encoder,
                        video::codec::Encoder::Create(width, height, codec_config));

    VideoAsset asset;
    asset.camera = reference.camera;
    asset.container.video.profile = codec_config.profile;
    asset.container.video.width = width;
    asset.container.video.height = height;
    asset.container.video.fps = reference.container.video.fps;
    for (int f = 0; f < frame_count; ++f) {
      video::Frame frame(width, height);
      for (uint8_t& s : frame.y_plane()) s = static_cast<uint8_t>(rng.Next());
      for (uint8_t& s : frame.u_plane()) s = static_cast<uint8_t>(rng.Next());
      for (uint8_t& s : frame.v_plane()) s = static_cast<uint8_t>(rng.Next());
      VR_ASSIGN_OR_RETURN(video::codec::EncodedFrame encoded,
                          encoder.EncodeFrame(frame));
      asset.container.video.frames.push_back(std::move(encoded));
      asset.ground_truth.emplace_back();  // Noise has no objects.
    }
    asset.container.tracks.push_back(video::container::MetadataTrack{
        "GTRU", SerializeGroundTruth(asset.ground_truth)});
    dataset.assets.push_back(std::move(asset));
  }
  return dataset;
}

}  // namespace visualroad::sim
