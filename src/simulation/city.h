#ifndef VISUALROAD_SIMULATION_CITY_H_
#define VISUALROAD_SIMULATION_CITY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "simulation/camera.h"
#include "simulation/tile.h"

namespace visualroad::sim {

/// The benchmark's four user-facing hyperparameters (Section 3.1) plus the
/// fixed per-tile camera configuration C = {c_t, c_p} = {4, 1}.
struct CityConfig {
  /// Scale factor L: number of tiles, and the per-query batch size is 4L.
  int scale_factor = 1;
  /// Camera resolution R.
  int width = 320;
  int height = 180;
  /// Simulation duration t in seconds, applied to every camera.
  double duration_seconds = 3.0;
  /// Capture rate; Visual Road supports 15-90 FPS (Section 5).
  double fps = 15.0;
  /// Random seed s; identical configurations reproduce identical datasets.
  uint64_t seed = 1;
  /// Traffic cameras per tile (c_t).
  int traffic_cameras_per_tile = 4;
  /// Panoramic cameras per tile (c_p); each contributes four face cameras.
  int panoramic_cameras_per_tile = 1;

  int FrameCount() const { return static_cast<int>(duration_seconds * fps + 0.5); }
};

/// Camera roles within Visual City.
enum class CameraKind {
  kTraffic = 0,
  kPanoramicFace = 1,
};

/// One placed camera. Panoramic rigs contribute four placements sharing a
/// `pano_group`, with `pano_face` in [0, 4).
struct CameraPlacement {
  int camera_id = 0;
  int tile_index = 0;
  CameraKind kind = CameraKind::kTraffic;
  int pano_group = -1;
  int pano_face = -1;
  CameraPose pose;
  double fov_deg = 60.0;

  /// Builds the concrete camera at resolution (width, height).
  Camera MakeCamera(int width, int height) const {
    return Camera(CameraIntrinsics{width, height, fov_deg}, pose);
  }
};

/// A constructed Visual City: L tiles drawn with replacement from the 72-tile
/// pool, each populated and instrumented with cameras (Section 3.1).
class VisualCity {
 public:
  /// Deterministically builds a city from the configuration (seeded
  /// substreams for tile choice, camera placement, and populations).
  static VisualCity Build(const CityConfig& config);

  const CityConfig& config() const { return config_; }
  std::vector<Tile>& tiles() { return *tiles_; }
  const std::vector<Tile>& tiles() const { return *tiles_; }
  const std::vector<CameraPlacement>& cameras() const { return cameras_; }

  /// All cameras belonging to tile `tile_index`.
  std::vector<const CameraPlacement*> CamerasOfTile(int tile_index) const;

 private:
  CityConfig config_;
  std::shared_ptr<std::vector<Tile>> tiles_;  // Shared: Tile is not copyable-cheap.
  std::vector<CameraPlacement> cameras_;
};

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_CITY_H_
