#include "simulation/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "common/serialize.h"

namespace visualroad::sim {

namespace {

/// Projects a world-space cuboid to its screen-space bounding rectangle.
/// Returns an empty rect when fully behind the camera.
RectI ProjectCuboid(const Camera& camera, const Vec3& lo, const Vec3& hi) {
  double min_x = 1e18, min_y = 1e18, max_x = -1e18, max_y = -1e18;
  bool any = false;
  for (int corner = 0; corner < 8; ++corner) {
    Vec3 p{(corner & 1) ? hi.x : lo.x, (corner & 2) ? hi.y : lo.y,
           (corner & 4) ? hi.z : lo.z};
    auto projected = camera.Project(p);
    if (!projected.has_value()) continue;
    any = true;
    min_x = std::min(min_x, projected->x);
    max_x = std::max(max_x, projected->x);
    min_y = std::min(min_y, projected->y);
    max_y = std::max(max_y, projected->y);
  }
  if (!any) return {};
  RectI rect{static_cast<int>(std::floor(min_x)), static_cast<int>(std::floor(min_y)),
             static_cast<int>(std::ceil(max_x)), static_cast<int>(std::ceil(max_y))};
  return rect.Clamp(camera.intrinsics().width, camera.intrinsics().height);
}

/// Counts framebuffer pixels inside `rect` whose id matches.
int64_t CountIdPixels(const Framebuffer& fb, const RectI& rect, int32_t id) {
  int64_t count = 0;
  for (int y = rect.y0; y < rect.y1; ++y) {
    for (int x = rect.x0; x < rect.x1; ++x) {
      if (fb.ids[fb.Index(x, y)] == id) ++count;
    }
  }
  return count;
}

/// Fill factor: the share of a projected bounding rectangle a fully visible
/// object of this class typically covers (its silhouette is not a rectangle).
double FillFactor(ObjectClass cls) {
  return cls == ObjectClass::kVehicle ? 0.55 : 0.60;
}

}  // namespace

const GroundTruthBox* FrameGroundTruth::Find(int32_t entity_id) const {
  for (const GroundTruthBox& box : boxes) {
    if (box.entity_id == entity_id) return &box;
  }
  return nullptr;
}

FrameGroundTruth ExtractGroundTruth(const Tile& tile, const Camera& camera,
                                    const Framebuffer& fb) {
  FrameGroundTruth out;

  for (const Vehicle& vehicle : tile.vehicles()) {
    int32_t id = kVehicleIdBase + vehicle.id;
    double hl = vehicle.length / 2.0, hw = vehicle.width / 2.0;
    Vec2 p = vehicle.position;
    Vec3 lo, hi;
    if (vehicle.axis == Axis::kX) {
      lo = {p.x - hl, p.y - hw, 0.0};
      hi = {p.x + hl, p.y + hw, vehicle.height};
    } else {
      lo = {p.x - hw, p.y - hl, 0.0};
      hi = {p.x + hw, p.y + hl, vehicle.height};
    }
    RectI box = ProjectCuboid(camera, lo, hi);
    if (box.Empty()) continue;
    int64_t visible_pixels = CountIdPixels(fb, box, id);
    if (visible_pixels == 0) continue;

    GroundTruthBox gt;
    gt.entity_id = id;
    gt.object_class = ObjectClass::kVehicle;
    gt.box = box;
    gt.visible_fraction = std::min(
        1.0, static_cast<double>(visible_pixels) /
                 std::max<double>(1.0, static_cast<double>(box.Area()) *
                                           FillFactor(ObjectClass::kVehicle)));
    gt.plate = vehicle.plate;

    // Plate visibility: the front face must point toward the camera, the
    // projected plate must be tall enough to resolve glyphs, and its pixels
    // must belong to this vehicle (unoccluded).
    Vec2 fwd2 = vehicle.Forward();
    Vec3 forward{fwd2.x, fwd2.y, 0.0};
    Vec3 face_centre{p.x + fwd2.x * hl, p.y + fwd2.y * hl, kPlateMountHeight};
    Vec3 to_camera = camera.pose().position - face_centre;
    if (to_camera.Dot(forward) > 0.0) {
      Vec3 lateral{-fwd2.y, fwd2.x, 0.0};
      Vec3 plate_lo =
          face_centre - lateral * (kPlateWidth / 2.0) - Vec3{0, 0, kPlateHeight / 2.0};
      Vec3 plate_hi =
          face_centre + lateral * (kPlateWidth / 2.0) + Vec3{0, 0, kPlateHeight / 2.0};
      RectI plate_box = ProjectCuboid(camera, plate_lo, plate_hi);
      if (!plate_box.Empty() && plate_box.Height() >= kPlateMinPixelHeight &&
          plate_box.Width() >= kPlateMinPixelWidth) {
        int64_t plate_pixels = CountIdPixels(fb, plate_box, id);
        if (plate_pixels >=
            static_cast<int64_t>(0.5 * static_cast<double>(plate_box.Area()))) {
          gt.plate_box = plate_box;
          gt.plate_visible = true;
        }
      }
    }
    out.boxes.push_back(std::move(gt));
  }

  for (const Pedestrian& pedestrian : tile.pedestrians()) {
    int32_t id = kPedestrianIdBase + pedestrian.id;
    Vec2 p = pedestrian.position;
    double hw = pedestrian.width / 2.0;
    RectI box = ProjectCuboid(camera, {p.x - hw, p.y - hw, 0.0},
                              {p.x + hw, p.y + hw, pedestrian.height});
    if (box.Empty()) continue;
    int64_t visible_pixels = CountIdPixels(fb, box, id);
    if (visible_pixels == 0) continue;
    GroundTruthBox gt;
    gt.entity_id = id;
    gt.object_class = ObjectClass::kPedestrian;
    gt.box = box;
    gt.visible_fraction = std::min(
        1.0, static_cast<double>(visible_pixels) /
                 std::max<double>(1.0, static_cast<double>(box.Area()) *
                                           FillFactor(ObjectClass::kPedestrian)));
    out.boxes.push_back(std::move(gt));
  }
  return out;
}

std::vector<uint8_t> SerializeGroundTruth(const std::vector<FrameGroundTruth>& frames) {
  ByteWriter writer;
  writer.U32(static_cast<uint32_t>(frames.size()));
  for (const FrameGroundTruth& frame : frames) {
    writer.U32(static_cast<uint32_t>(frame.boxes.size()));
    for (const GroundTruthBox& box : frame.boxes) {
      writer.I32(box.entity_id);
      writer.U8(static_cast<uint8_t>(box.object_class));
      writer.I32(box.box.x0);
      writer.I32(box.box.y0);
      writer.I32(box.box.x1);
      writer.I32(box.box.y1);
      writer.F64(box.visible_fraction);
      writer.Str(box.plate);
      writer.I32(box.plate_box.x0);
      writer.I32(box.plate_box.y0);
      writer.I32(box.plate_box.x1);
      writer.I32(box.plate_box.y1);
      writer.U8(box.plate_visible ? 1 : 0);
    }
  }
  return writer.Take();
}

StatusOr<std::vector<FrameGroundTruth>> ParseGroundTruth(
    const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  uint32_t frame_count = cursor.U32();
  std::vector<FrameGroundTruth> frames;
  frames.reserve(frame_count);
  for (uint32_t f = 0; f < frame_count; ++f) {
    FrameGroundTruth frame;
    uint32_t box_count = cursor.U32();
    frame.boxes.reserve(box_count);
    for (uint32_t b = 0; b < box_count; ++b) {
      GroundTruthBox box;
      box.entity_id = cursor.I32();
      box.object_class = static_cast<ObjectClass>(cursor.U8());
      box.box = {cursor.I32(), cursor.I32(), cursor.I32(), cursor.I32()};
      box.visible_fraction = cursor.F64();
      box.plate = cursor.Str();
      box.plate_box = {cursor.I32(), cursor.I32(), cursor.I32(), cursor.I32()};
      box.plate_visible = cursor.U8() != 0;
      frame.boxes.push_back(std::move(box));
    }
    frames.push_back(std::move(frame));
    if (!cursor.ok()) return Status::DataLoss("truncated ground-truth payload");
  }
  if (!cursor.ok()) return Status::DataLoss("truncated ground-truth payload");
  return frames;
}

}  // namespace visualroad::sim
