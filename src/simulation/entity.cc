#include "simulation/entity.h"

namespace visualroad::sim {

const char* ObjectClassName(ObjectClass cls) {
  return cls == ObjectClass::kVehicle ? "vehicle" : "pedestrian";
}

double Vehicle::Heading() const {
  if (axis == Axis::kX) return direction > 0 ? 0.0 : kPi;
  return direction > 0 ? kPi / 2.0 : -kPi / 2.0;
}

std::string RandomPlate(Pcg32& rng) {
  static const char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string plate(6, 'A');
  for (char& c : plate) {
    c = kAlphabet[rng.NextBounded(36)];
  }
  return plate;
}

}  // namespace visualroad::sim
