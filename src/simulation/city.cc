#include "simulation/city.h"

#include "common/random.h"

namespace visualroad::sim {

VisualCity VisualCity::Build(const CityConfig& config) {
  VisualCity city;
  city.config_ = config;
  city.tiles_ = std::make_shared<std::vector<Tile>>();

  // Tile selection: L draws with replacement from the 72-archetype pool.
  Pcg32 tile_rng = SubStream(config.seed, "tile-selection");
  for (int i = 0; i < config.scale_factor; ++i) {
    int archetype_id = static_cast<int>(tile_rng.NextBounded(kTilePoolSize));
    uint64_t instance_seed = config.seed ^ (static_cast<uint64_t>(i) << 32);
    city.tiles_->emplace_back(TilePoolEntry(archetype_id), instance_seed);
  }

  // Camera placement (Section 3.1): traffic cameras 10-20m above a roadway
  // with random orientation; panoramic cameras 5-10m above sidewalks.
  int camera_id = 0;
  int pano_group = 0;
  for (int t = 0; t < config.scale_factor; ++t) {
    const Tile& tile = (*city.tiles_)[t];
    const RoadNetwork& roads = tile.roads();
    Pcg32 cam_rng = SubStream(config.seed, "cameras", static_cast<uint64_t>(t));

    for (int c = 0; c < config.traffic_cameras_per_tile; ++c) {
      CameraPlacement placement;
      placement.camera_id = camera_id++;
      placement.tile_index = t;
      placement.kind = CameraKind::kTraffic;
      placement.fov_deg = 62.0;

      // A random point on a random road.
      double line = roads.road_lines()[cam_rng.NextBounded(
          static_cast<uint32_t>(roads.road_lines().size()))];
      double along = cam_rng.NextDouble(20.0, roads.tile_size() - 20.0);
      bool x_axis_road = cam_rng.NextBool(0.5);
      Vec2 ground = x_axis_road ? Vec2{along, line} : Vec2{line, along};

      placement.pose.position = {ground.x, ground.y,
                                 cam_rng.NextDouble(10.0, 20.0)};
      // Random orientation biased along the roadway (a traffic camera's
      // mounting): one of the road's two directions plus jitter, pitched
      // down so the street stays in view from 10-20m up.
      double road_axis = x_axis_road ? 0.0 : kPi / 2.0;
      if (cam_rng.NextBool(0.5)) road_axis += kPi;
      placement.pose.yaw = road_axis + cam_rng.NextDouble(-0.5, 0.5);
      placement.pose.pitch = cam_rng.NextDouble(-0.85, -0.45);
      city.cameras_.push_back(placement);
    }

    for (int c = 0; c < config.panoramic_cameras_per_tile; ++c) {
      // A random sidewalk point: beside a random road.
      double line = roads.road_lines()[cam_rng.NextBounded(
          static_cast<uint32_t>(roads.road_lines().size()))];
      double along = cam_rng.NextDouble(20.0, roads.tile_size() - 20.0);
      double side = (roads.road_half_width() + roads.sidewalk_outer()) / 2.0;
      side *= cam_rng.NextBool(0.5) ? 1.0 : -1.0;
      bool x_axis_road = cam_rng.NextBool(0.5);
      Vec2 ground =
          x_axis_road ? Vec2{along, line + side} : Vec2{line + side, along};
      double height = cam_rng.NextDouble(5.0, 10.0);
      double base_yaw = cam_rng.NextDouble(0.0, 2.0 * kPi);

      for (int face = 0; face < 4; ++face) {
        CameraPlacement placement;
        placement.camera_id = camera_id++;
        placement.tile_index = t;
        placement.kind = CameraKind::kPanoramicFace;
        placement.pano_group = pano_group;
        placement.pano_face = face;
        placement.fov_deg = 120.0;
        placement.pose.position = {ground.x, ground.y, height};
        placement.pose.yaw = base_yaw + face * (kPi / 2.0);
        placement.pose.pitch = 0.0;
        city.cameras_.push_back(placement);
      }
      ++pano_group;
    }
  }
  return city;
}

std::vector<const CameraPlacement*> VisualCity::CamerasOfTile(int tile_index) const {
  std::vector<const CameraPlacement*> result;
  for (const CameraPlacement& camera : cameras_) {
    if (camera.tile_index == tile_index) result.push_back(&camera);
  }
  return result;
}

}  // namespace visualroad::sim
