#include "simulation/road_network.h"

#include <cmath>
#include <limits>

namespace visualroad::sim {

RoadNetwork::RoadNetwork(Town town) : town_(town) {
  tile_size_ = 240.0;
  road_half_width_ = 5.0;
  sidewalk_outer_ = 8.0;
  lane_offset_ = 2.5;
  if (town == Town::kTown01) {
    road_lines_ = {40.0, 120.0, 200.0};  // Dense downtown lattice.
  } else {
    road_lines_ = {60.0, 180.0};  // Sparser suburban lattice.
  }
}

namespace {
/// Distance from `v` to the nearest entry of `lines`.
double NearestDistance(const std::vector<double>& lines, double v, double* line) {
  double best = std::numeric_limits<double>::infinity();
  for (double l : lines) {
    double d = std::abs(v - l);
    if (d < best) {
      best = d;
      if (line != nullptr) *line = l;
    }
  }
  return best;
}
}  // namespace

SurfaceKind RoadNetwork::Classify(const Vec2& p) const {
  double dx = NearestDistance(road_lines_, p.x, nullptr);
  double dy = NearestDistance(road_lines_, p.y, nullptr);
  bool on_x_road = dx <= road_half_width_;  // A road running along the y axis.
  bool on_y_road = dy <= road_half_width_;  // A road running along the x axis.

  if (on_x_road && on_y_road) return SurfaceKind::kIntersection;
  if (on_x_road || on_y_road) {
    // Dashed centre-line markings: 2m dashes with 2m gaps along the road.
    double along = on_x_road ? p.y : p.x;
    double across = on_x_road ? dx : dy;
    if (across < 0.15 && std::fmod(std::abs(along), 4.0) < 2.0) {
      return SurfaceKind::kLaneMarking;
    }
    return SurfaceKind::kRoad;
  }
  if (dx <= sidewalk_outer_ || dy <= sidewalk_outer_) return SurfaceKind::kSidewalk;
  return SurfaceKind::kGrass;
}

bool RoadNetwork::OnRoad(const Vec2& p) const {
  SurfaceKind kind = Classify(p);
  return kind == SurfaceKind::kRoad || kind == SurfaceKind::kLaneMarking ||
         kind == SurfaceKind::kIntersection;
}

bool RoadNetwork::InIntersection(const Vec2& p) const {
  return Classify(p) == SurfaceKind::kIntersection;
}

double RoadNetwork::NearestRoadLine(double v) const {
  double line = road_lines_.front();
  NearestDistance(road_lines_, v, &line);
  return line;
}

double RoadNetwork::Wrap(double v) const {
  v = std::fmod(v, tile_size_);
  if (v < 0) v += tile_size_;
  return v;
}

}  // namespace visualroad::sim
