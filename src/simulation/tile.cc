#include "simulation/tile.h"

#include <algorithm>
#include <cmath>

namespace visualroad::sim {

TileArchetype TilePoolEntry(int id) {
  TileArchetype archetype;
  archetype.id = id;
  archetype.town = (id / (kWeatherCount * 3)) % 2 == 0 ? Town::kTown01 : Town::kTown02;
  archetype.weather_id = (id / 3) % kWeatherCount;
  archetype.density = static_cast<Density>(id % 3);
  return archetype;
}

int VehicleCount(Density density) {
  // Scaled from the paper's per-tile populations (a rush-hour tile holds 120
  // vehicles over several km^2) to this simulator's 240m tile.
  switch (density) {
    case Density::kLow:
      return 6;
    case Density::kMedium:
      return 14;
    case Density::kRushHour:
      return 28;
  }
  return 6;
}

int PedestrianCount(Density density) {
  switch (density) {
    case Density::kLow:
      return 10;
    case Density::kMedium:
      return 28;
    case Density::kRushHour:
      return 64;
  }
  return 10;
}

Tile::Tile(const TileArchetype& archetype, uint64_t instance_seed)
    : archetype_(archetype),
      roads_(archetype.town),
      weather_(WeatherPreset(archetype.weather_id)),
      rng_(SubStream(instance_seed, "tile", static_cast<uint64_t>(archetype.id))) {
  SpawnBuildings();
  SpawnVehicles(VehicleCount(archetype.density));
  SpawnPedestrians(PedestrianCount(archetype.density));
}

void Tile::SpawnBuildings() {
  // City blocks are the open cells between sidewalk outer edges. Enumerate
  // cell boundaries from the road lines (plus the tile borders).
  const std::vector<double>& lines = roads_.road_lines();
  std::vector<double> edges;
  edges.push_back(0.0);
  for (double line : lines) {
    edges.push_back(line - roads_.sidewalk_outer());
    edges.push_back(line + roads_.sidewalk_outer());
  }
  edges.push_back(roads_.tile_size());

  bool downtown = archetype_.town == Town::kTown01;
  for (size_t iy = 0; iy + 1 < edges.size(); iy += 2) {
    for (size_t ix = 0; ix + 1 < edges.size(); ix += 2) {
      double x0 = edges[ix], x1 = edges[ix + 1];
      double y0 = edges[iy], y1 = edges[iy + 1];
      if (x1 - x0 < 14.0 || y1 - y0 < 14.0) continue;
      // One to three buildings per block, placed with margins.
      int count = 1 + static_cast<int>(rng_.NextBounded(3));
      for (int b = 0; b < count; ++b) {
        Building building;
        double margin = 3.0;
        double w = rng_.NextDouble(10.0, std::max(12.0, (x1 - x0) * 0.5));
        double d = rng_.NextDouble(10.0, std::max(12.0, (y1 - y0) * 0.5));
        w = std::min(w, x1 - x0 - 2 * margin);
        d = std::min(d, y1 - y0 - 2 * margin);
        double bx = rng_.NextDouble(x0 + margin, std::max(x0 + margin + 0.1, x1 - margin - w));
        double by = rng_.NextDouble(y0 + margin, std::max(y0 + margin + 0.1, y1 - margin - d));
        building.min_corner = {bx, by};
        building.max_corner = {bx + w, by + d};
        building.height = downtown ? rng_.NextDouble(14.0, 42.0)
                                   : rng_.NextDouble(5.0, 14.0);
        uint8_t base = static_cast<uint8_t>(rng_.NextInt(90, 190));
        building.facade_color = {
            static_cast<uint8_t>(std::clamp<int>(base + rng_.NextInt(-20, 30), 0, 255)),
            static_cast<uint8_t>(std::clamp<int>(base + rng_.NextInt(-25, 15), 0, 255)),
            static_cast<uint8_t>(std::clamp<int>(base + rng_.NextInt(-30, 10), 0, 255))};
        building.window_spacing = rng_.NextDouble(2.5, 4.0);
        buildings_.push_back(building);
      }
    }
  }
}

void Tile::SpawnVehicles(int count) {
  static const video::Rgb kPalette[] = {
      {200, 30, 30},  {30, 60, 180},  {230, 230, 230}, {25, 25, 28},
      {120, 125, 70}, {190, 150, 40}, {90, 90, 100},   {160, 40, 120},
  };
  for (int i = 0; i < count; ++i) {
    Vehicle vehicle;
    vehicle.id = i;
    vehicle.plate = RandomPlate(rng_);
    vehicle.body_color = kPalette[rng_.NextBounded(8)];
    vehicle.axis = rng_.NextBool(0.5) ? Axis::kX : Axis::kY;
    vehicle.direction = rng_.NextBool(0.5) ? 1 : -1;
    vehicle.speed = rng_.NextDouble(7.0, 14.0);
    // Lane-centre placement: the right-hand lane for the travel direction.
    double line = roads_.road_lines()[rng_.NextBounded(
        static_cast<uint32_t>(roads_.road_lines().size()))];
    double along = rng_.NextDouble(0.0, roads_.tile_size());
    double lane = roads_.lane_offset() * vehicle.direction;
    if (vehicle.axis == Axis::kX) {
      vehicle.position = {along, line - lane};
    } else {
      vehicle.position = {line + lane, along};
    }
    vehicles_.push_back(std::move(vehicle));
  }
}

void Tile::SpawnPedestrians(int count) {
  for (int i = 0; i < count; ++i) {
    Pedestrian pedestrian;
    pedestrian.id = i;
    pedestrian.clothing_color = {static_cast<uint8_t>(rng_.NextInt(40, 220)),
                                 static_cast<uint8_t>(rng_.NextInt(40, 220)),
                                 static_cast<uint8_t>(rng_.NextInt(40, 220))};
    pedestrian.height = rng_.NextDouble(1.55, 1.92);
    pedestrian.axis = rng_.NextBool(0.5) ? Axis::kX : Axis::kY;
    pedestrian.direction = rng_.NextBool(0.5) ? 1 : -1;
    pedestrian.speed = rng_.NextDouble(1.0, 1.8);
    double line = roads_.road_lines()[rng_.NextBounded(
        static_cast<uint32_t>(roads_.road_lines().size()))];
    // Sidewalk centre: between the road edge and the sidewalk outer edge.
    double offset = (roads_.road_half_width() + roads_.sidewalk_outer()) / 2.0;
    offset *= rng_.NextBool(0.5) ? 1.0 : -1.0;
    double along = rng_.NextDouble(0.0, roads_.tile_size());
    if (pedestrian.axis == Axis::kX) {
      pedestrian.position = {along, line + offset};
    } else {
      pedestrian.position = {line + offset, along};
    }
    pedestrians_.push_back(std::move(pedestrian));
  }
}

void Tile::Step(double dt) {
  time_ += dt;
  for (Vehicle& vehicle : vehicles_) {
    Vec2 forward = vehicle.Forward();
    Vec2 next = vehicle.position + forward * (vehicle.speed * dt);
    next.x = roads_.Wrap(next.x);
    next.y = roads_.Wrap(next.y);

    // Intersection handling: when the vehicle centre crosses near a crossing
    // road's centreline, it may turn onto that road.
    double along = vehicle.axis == Axis::kX ? next.x : next.y;
    double previous = vehicle.axis == Axis::kX ? vehicle.position.x : vehicle.position.y;
    for (double line : roads_.road_lines()) {
      bool crossed = (previous < line && along >= line && vehicle.direction > 0) ||
                     (previous > line && along <= line && vehicle.direction < 0);
      if (!crossed) continue;
      if (rng_.NextBool(0.4)) {
        // Turn onto the crossing road: switch axis, pick a direction, and
        // snap onto that road's right-hand lane. The intersection centre is
        // (line, current_road) for an x-travelling vehicle and
        // (current_road, line) for a y-travelling one.
        Axis new_axis = vehicle.axis == Axis::kX ? Axis::kY : Axis::kX;
        int new_direction = rng_.NextBool(0.5) ? 1 : -1;
        double lane = roads_.lane_offset() * new_direction;
        double current_road = roads_.NearestRoadLine(
            vehicle.axis == Axis::kX ? vehicle.position.y : vehicle.position.x);
        if (new_axis == Axis::kX) {
          // Was travelling along y and crossed the x-running road at
          // y = line; start at the intersection (current_road, line).
          next = {roads_.Wrap(current_road + new_direction * 0.5), line - lane};
        } else {
          // Was travelling along x and crossed the y-running road at
          // x = line; start at the intersection (line, current_road).
          next = {line + lane, roads_.Wrap(current_road + new_direction * 0.5)};
        }
        vehicle.axis = new_axis;
        vehicle.direction = new_direction;
      }
      break;
    }
    vehicle.position = next;
  }

  for (Pedestrian& pedestrian : pedestrians_) {
    Vec2 forward = pedestrian.axis == Axis::kX
                       ? Vec2{static_cast<double>(pedestrian.direction), 0.0}
                       : Vec2{0.0, static_cast<double>(pedestrian.direction)};
    Vec2 next = pedestrian.position + forward * (pedestrian.speed * dt);
    next.x = roads_.Wrap(next.x);
    next.y = roads_.Wrap(next.y);
    pedestrian.position = next;
    // Occasionally reverse direction (window shopping).
    if (rng_.NextBool(0.002)) pedestrian.direction = -pedestrian.direction;
  }
}

}  // namespace visualroad::sim
