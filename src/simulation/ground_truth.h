#ifndef VISUALROAD_SIMULATION_GROUND_TRUTH_H_
#define VISUALROAD_SIMULATION_GROUND_TRUTH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "simulation/render/scene_renderer.h"

namespace visualroad::sim {

/// Exact, simulation-derived annotation for one object in one frame. This is
/// what the paper means by "the VCD queries the simulation engine": because
/// the pixels and the annotation come from the same geometry, ground truth is
/// automatic and precise (Section 2).
struct GroundTruthBox {
  int32_t entity_id = 0;
  ObjectClass object_class = ObjectClass::kVehicle;
  /// Projected bounding rectangle in pixels, clamped to the frame.
  RectI box;
  /// Fraction of the object's projected extent that is actually visible
  /// (occlusion-aware, from the renderer's id buffer), in [0, 1].
  double visible_fraction = 0.0;
  /// Vehicle-only: the six-character license plate.
  std::string plate;
  /// Vehicle-only: projected plate rectangle (empty when not visible).
  RectI plate_box;
  /// Vehicle-only: true when the plate faces the camera unoccluded and is
  /// large enough to resolve (the Q8 "identifiable" condition).
  bool plate_visible = false;
};

/// All annotations for one frame of one camera.
struct FrameGroundTruth {
  std::vector<GroundTruthBox> boxes;

  /// Returns the box for `entity_id`, or nullptr.
  const GroundTruthBox* Find(int32_t entity_id) const;
};

/// Extracts ground truth for the tile state seen by `camera` from the
/// framebuffer the renderer produced for that exact state.
FrameGroundTruth ExtractGroundTruth(const Tile& tile, const Camera& camera,
                                    const Framebuffer& framebuffer);

/// Serialises per-frame ground truth into the payload of a "GTRU" container
/// track.
std::vector<uint8_t> SerializeGroundTruth(const std::vector<FrameGroundTruth>& frames);

/// Parses a "GTRU" payload.
StatusOr<std::vector<FrameGroundTruth>> ParseGroundTruth(
    const std::vector<uint8_t>& bytes);

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_GROUND_TRUTH_H_
