#ifndef VISUALROAD_SIMULATION_CAMERA_H_
#define VISUALROAD_SIMULATION_CAMERA_H_

#include <array>
#include <optional>

#include "common/geometry.h"

namespace visualroad::sim {

/// Pinhole camera intrinsics.
struct CameraIntrinsics {
  int width = 320;
  int height = 180;
  /// Horizontal field of view in degrees.
  double fov_deg = 90.0;

  /// Focal length in pixels.
  double Focal() const { return (width / 2.0) / std::tan(DegToRad(fov_deg) / 2.0); }
};

/// Camera pose: position plus yaw (about +z, 0 = +x) and pitch (positive
/// looks up, negative looks down).
struct CameraPose {
  Vec3 position;
  double yaw = 0.0;
  double pitch = 0.0;
};

/// A projected world point.
struct ProjectedPoint {
  double x = 0.0;
  double y = 0.0;
  double depth = 0.0;  // Camera-space forward distance (metres).
};

/// A world-space pinhole camera with the basis, projection, and inverse
/// projection used by the renderer, the ground-truth extractor, and the
/// panoramic stitcher.
class Camera {
 public:
  Camera(const CameraIntrinsics& intrinsics, const CameraPose& pose);

  const CameraIntrinsics& intrinsics() const { return intrinsics_; }
  const CameraPose& pose() const { return pose_; }
  const Vec3& forward() const { return forward_; }
  const Vec3& right() const { return right_; }
  const Vec3& up() const { return up_; }

  /// Transforms a world point into camera coordinates (right, up, forward).
  Vec3 ToCamera(const Vec3& world) const;

  /// Projects a world point to pixel coordinates; nullopt when behind the
  /// image plane (depth <= epsilon).
  std::optional<ProjectedPoint> Project(const Vec3& world) const;

  /// Unit world-space ray direction through pixel centre (px, py).
  Vec3 PixelRay(double px, double py) const;

 private:
  CameraIntrinsics intrinsics_;
  CameraPose pose_;
  Vec3 forward_;
  Vec3 right_;
  Vec3 up_;
};

/// A panoramic camera rig: four ordinary cameras with overlapping 120-degree
/// fields of view at 90-degree yaw spacing, together covering 360 degrees
/// (Section 3.1).
struct PanoramicRig {
  Vec3 position;
  double base_yaw = 0.0;
  CameraIntrinsics face_intrinsics{320, 180, 120.0};

  /// The rig's four constituent cameras.
  std::array<Camera, 4> Faces() const;
};

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_CAMERA_H_
