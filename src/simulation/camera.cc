#include "simulation/camera.h"

namespace visualroad::sim {

Camera::Camera(const CameraIntrinsics& intrinsics, const CameraPose& pose)
    : intrinsics_(intrinsics), pose_(pose) {
  double cp = std::cos(pose.pitch), sp = std::sin(pose.pitch);
  double cy = std::cos(pose.yaw), sy = std::sin(pose.yaw);
  forward_ = {cp * cy, cp * sy, sp};
  // Right-handed basis with world up (0,0,1): right = forward x up.
  right_ = forward_.Cross({0.0, 0.0, 1.0}).Normalized();
  if (right_.Norm() < 0.5) right_ = {0.0, -1.0, 0.0};  // Looking straight up/down.
  up_ = right_.Cross(forward_);
}

Vec3 Camera::ToCamera(const Vec3& world) const {
  Vec3 d = world - pose_.position;
  return {d.Dot(right_), d.Dot(up_), d.Dot(forward_)};
}

std::optional<ProjectedPoint> Camera::Project(const Vec3& world) const {
  Vec3 cam = ToCamera(world);
  if (cam.z <= 1e-4) return std::nullopt;
  double focal = intrinsics_.Focal();
  return ProjectedPoint{intrinsics_.width / 2.0 + focal * cam.x / cam.z,
                        intrinsics_.height / 2.0 - focal * cam.y / cam.z, cam.z};
}

Vec3 Camera::PixelRay(double px, double py) const {
  double focal = intrinsics_.Focal();
  double cx = (px - intrinsics_.width / 2.0) / focal;
  double cy = -(py - intrinsics_.height / 2.0) / focal;
  Vec3 dir = forward_ + right_ * cx + up_ * cy;
  return dir.Normalized();
}

std::array<Camera, 4> PanoramicRig::Faces() const {
  CameraPose pose;
  pose.position = position;
  pose.pitch = 0.0;
  pose.yaw = base_yaw;
  Camera c0(face_intrinsics, pose);
  pose.yaw = base_yaw + kPi / 2.0;
  Camera c1(face_intrinsics, pose);
  pose.yaw = base_yaw + kPi;
  Camera c2(face_intrinsics, pose);
  pose.yaw = base_yaw + 3.0 * kPi / 2.0;
  Camera c3(face_intrinsics, pose);
  return {c0, c1, c2, c3};
}

}  // namespace visualroad::sim
