#ifndef VISUALROAD_SIMULATION_GENERATOR_H_
#define VISUALROAD_SIMULATION_GENERATOR_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "simulation/city.h"
#include "simulation/ground_truth.h"
#include "video/codec/codec.h"
#include "video/container/vrmp.h"

namespace visualroad::sim {

/// One generated input video: the camera that produced it, its encoded
/// container (with an embedded "GTRU" ground-truth track), and the parsed
/// per-frame ground truth.
struct VideoAsset {
  CameraPlacement camera;
  video::container::Container container;
  std::vector<FrameGroundTruth> ground_truth;
};

/// A complete generated dataset: the benchmark's input corpus.
struct Dataset {
  CityConfig config;
  std::vector<VideoAsset> assets;

  /// Traffic-camera assets only (the inputs to Q7/Q8).
  std::vector<const VideoAsset*> TrafficAssets() const;
  /// The four face assets of panoramic rig `group`, ordered by face.
  std::vector<const VideoAsset*> PanoramicGroup(int group) const;
  /// Number of panoramic rigs in the dataset.
  int PanoramicGroupCount() const;
};

/// VCG tuning knobs.
struct GeneratorOptions {
  /// Codec settings used to encode every camera's output.
  video::codec::EncoderConfig codec;
  /// Number of simulated nodes for distributed generation; tiles are
  /// partitioned across nodes, which render in parallel (Section 5). 1 =
  /// single-node mode.
  int num_nodes = 1;
  /// Worker threads for single-node generation: tiles render and encode
  /// concurrently, one task per tile. Output is byte-identical to the serial
  /// path because every tile derives its own RNG substream and results are
  /// merged in tile order. Ignored when num_nodes > 1 (each simulated node
  /// is already one worker).
  int threads = 1;
};

/// Timing breakdown for the most recent generation (drives Figures 8 and 9).
struct GeneratorStats {
  double total_seconds = 0.0;
  int64_t frames_rendered = 0;
  int64_t bytes_encoded = 0;
  /// Workers that rendered tiles (1 = serial path).
  int workers = 1;
  /// Executor counters for the tile pool (zeroed on the serial path).
  PoolStats pool;
};

/// The Visual City Generator (Section 3.1): builds a Visual City from the
/// hyperparameters, executes the simulation, captures every camera, encodes
/// the videos, and attaches automatically computed ground truth.
class VisualCityGenerator {
 public:
  explicit VisualCityGenerator(const GeneratorOptions& options) : options_(options) {}

  /// Generates the full dataset for `config`.
  StatusOr<Dataset> Generate(const CityConfig& config);

  const GeneratorStats& last_stats() const { return stats_; }

 private:
  GeneratorOptions options_;
  GeneratorStats stats_;
};

}  // namespace visualroad::sim

#endif  // VISUALROAD_SIMULATION_GENERATOR_H_
