#include "simulation/generator.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "video/color.h"

namespace visualroad::sim {

std::vector<const VideoAsset*> Dataset::TrafficAssets() const {
  std::vector<const VideoAsset*> result;
  for (const VideoAsset& asset : assets) {
    if (asset.camera.kind == CameraKind::kTraffic) result.push_back(&asset);
  }
  return result;
}

std::vector<const VideoAsset*> Dataset::PanoramicGroup(int group) const {
  std::vector<const VideoAsset*> result(4, nullptr);
  for (const VideoAsset& asset : assets) {
    if (asset.camera.kind == CameraKind::kPanoramicFace &&
        asset.camera.pano_group == group) {
      result[asset.camera.pano_face] = &asset;
    }
  }
  return result;
}

int Dataset::PanoramicGroupCount() const {
  int max_group = -1;
  for (const VideoAsset& asset : assets) {
    max_group = std::max(max_group, asset.camera.pano_group);
  }
  return max_group + 1;
}

namespace {

/// Renders and encodes every camera of one tile across the full duration.
/// Per-camera streaming encoders keep memory proportional to one frame.
metrics::Counter& FramesRenderedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global().GetCounter(
      "vr_generator_frames_rendered_total",
      "Camera frames the generator rendered and encoded");
  return counter;
}

metrics::Counter& TilesGeneratedCounter() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global().GetCounter(
      "vr_generator_tiles_total", "City tiles the generator completed");
  return counter;
}

Status GenerateTile(const CityConfig& config,
                    const video::codec::EncoderConfig& codec_config, Tile& tile,
                    const std::vector<const CameraPlacement*>& cameras,
                    std::vector<VideoAsset>& out, int64_t& frames_rendered) {
  TRACE_SPAN("generate_tile");
  struct PerCamera {
    const CameraPlacement* placement;
    Camera camera;
    video::codec::Encoder encoder;
    VideoAsset asset;
  };
  std::vector<PerCamera> streams;
  streams.reserve(cameras.size());
  for (const CameraPlacement* placement : cameras) {
    VR_ASSIGN_OR_RETURN(
        video::codec::Encoder encoder,
        video::codec::Encoder::Create(config.width, config.height, codec_config));
    PerCamera stream{placement, placement->MakeCamera(config.width, config.height),
                     std::move(encoder), VideoAsset{}};
    stream.asset.camera = *placement;
    stream.asset.container.video.profile = codec_config.profile;
    stream.asset.container.video.width = config.width;
    stream.asset.container.video.height = config.height;
    stream.asset.container.video.fps = config.fps;
    streams.push_back(std::move(stream));
  }

  int frame_count = config.FrameCount();
  double dt = 1.0 / config.fps;
  for (int f = 0; f < frame_count; ++f) {
    tile.Step(dt);
    for (PerCamera& stream : streams) {
      Framebuffer fb = RenderScene(tile, stream.camera, f, config.seed);
      video::Frame frame = video::RgbToFrame(fb.color);
      VR_ASSIGN_OR_RETURN(video::codec::EncodedFrame encoded,
                          stream.encoder.EncodeFrame(frame));
      stream.asset.container.video.frames.push_back(std::move(encoded));
      stream.asset.ground_truth.push_back(
          ExtractGroundTruth(tile, stream.camera, fb));
      ++frames_rendered;
    }
  }

  for (PerCamera& stream : streams) {
    stream.asset.container.tracks.push_back(video::container::MetadataTrack{
        "GTRU", SerializeGroundTruth(stream.asset.ground_truth)});
    out.push_back(std::move(stream.asset));
  }
  FramesRenderedCounter().Increment(
      static_cast<double>(frame_count) * static_cast<double>(streams.size()));
  TilesGeneratedCounter().Increment();
  return Status::Ok();
}

}  // namespace

StatusOr<Dataset> VisualCityGenerator::Generate(const CityConfig& config) {
  if (config.scale_factor < 1) {
    return Status::InvalidArgument("scale factor must be at least 1");
  }
  if (config.width <= 0 || config.height <= 0 || config.fps <= 0) {
    return Status::InvalidArgument("invalid resolution or frame rate");
  }
  if (config.fps < 15.0 || config.fps > 90.0) {
    return Status::InvalidArgument("frame rate must be in [15, 90] FPS");
  }

  Stopwatch stopwatch;
  VisualCity city = VisualCity::Build(config);

  Dataset dataset;
  dataset.config = config;

  // Distributed mode runs one worker per simulated node (the source of
  // Figure 9's linear scaling); single-node mode parallelises the same tile
  // loop across options_.threads workers. Both are deterministic: tiles are
  // independent (each derives its own RNG substream) and results are merged
  // in tile order, so output is byte-identical at every worker count.
  int workers = options_.num_nodes > 1 ? options_.num_nodes
                                       : std::max(1, options_.threads);
  stats_ = GeneratorStats{};
  stats_.workers = workers;

  int64_t frames_rendered = 0;
  if (workers <= 1 || config.scale_factor <= 1) {
    stats_.workers = 1;
    for (int t = 0; t < config.scale_factor; ++t) {
      VR_RETURN_IF_ERROR(GenerateTile(config, options_.codec, city.tiles()[t],
                                      city.CamerasOfTile(t), dataset.assets,
                                      frames_rendered));
    }
  } else {
    ThreadPool pool(workers, "generator");
    std::vector<std::vector<VideoAsset>> per_tile(config.scale_factor);
    std::vector<int64_t> per_tile_frames(config.scale_factor, 0);
    // Each task owns its own output slots, so no cross-task locking is
    // needed; grain 1 because one tile is already a coarse unit of work.
    Status status = pool.ParallelForStatus(
        config.scale_factor,
        [&](int t) {
          return GenerateTile(config, options_.codec, city.tiles()[t],
                              city.CamerasOfTile(t), per_tile[t],
                              per_tile_frames[t]);
        },
        /*grain=*/1);
    stats_.pool = pool.stats();
    VR_RETURN_IF_ERROR(status);
    for (int t = 0; t < config.scale_factor; ++t) {
      frames_rendered += per_tile_frames[t];
      for (VideoAsset& asset : per_tile[t]) {
        dataset.assets.push_back(std::move(asset));
      }
    }
  }

  stats_.total_seconds = stopwatch.ElapsedSeconds();
  stats_.frames_rendered = frames_rendered;
  stats_.bytes_encoded = 0;
  for (const VideoAsset& asset : dataset.assets) {
    stats_.bytes_encoded += asset.container.video.TotalBytes();
  }
  return dataset;
}

}  // namespace visualroad::sim
