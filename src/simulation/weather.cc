#include "simulation/weather.h"

#include <array>
#include <cassert>

namespace visualroad::sim {

namespace {

const std::array<Weather, kWeatherCount>& Presets() {
  static const std::array<Weather, kWeatherCount>* presets =
      new std::array<Weather, kWeatherCount>{{
          {0, "ClearNoon", 0.05, 0.0, 75.0, 150.0, 0.0008},
          {1, "CloudyNoon", 0.60, 0.0, 70.0, 140.0, 0.0012},
          {2, "WetNoon", 0.35, 0.15, 68.0, 145.0, 0.0015},
          {3, "WetCloudyNoon", 0.70, 0.25, 66.0, 135.0, 0.0018},
          {4, "MidRainyNoon", 0.80, 0.55, 60.0, 130.0, 0.0026},
          {5, "HardRainNoon", 0.95, 0.90, 55.0, 125.0, 0.0038},
          {6, "SoftRainNoon", 0.75, 0.35, 62.0, 138.0, 0.0022},
          {7, "ClearSunset", 0.10, 0.0, 12.0, 255.0, 0.0012},
          {8, "CloudySunset", 0.65, 0.0, 10.0, 250.0, 0.0016},
          {9, "WetSunset", 0.40, 0.20, 9.0, 248.0, 0.0020},
          {10, "MidRainSunset", 0.85, 0.60, 8.0, 245.0, 0.0030},
          {11, "HardRainSunset", 0.95, 0.92, 6.0, 240.0, 0.0042},
      }};
  return *presets;
}

}  // namespace

const Weather& WeatherPreset(int id) {
  assert(id >= 0 && id < kWeatherCount);
  return Presets()[id];
}

}  // namespace visualroad::sim
