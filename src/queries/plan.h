#ifndef VISUALROAD_QUERIES_PLAN_H_
#define VISUALROAD_QUERIES_PLAN_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "queries/params.h"
#include "queries/semantic_cache.h"

namespace visualroad::queries {

/// Static facts about a query's input stream that planning needs — all
/// available from container/bitstream metadata, never from decoded pixels.
struct StreamMeta {
  uint64_t identity = 0;  // StreamIdentity() of the bitstream.
  int frame_count = 0;
  int width = 0;
  int height = 0;
  double fps = 0.0;
  /// Number of closed GOPs (0 when unknown; only used for explain output).
  int gop_count = 0;
};

/// Observed behaviour of one cascade/filter stage, aggregated across
/// executions: how often the stage resolved the frames it saw, and what it
/// cost. "Resolved" means the frame needed no later (more expensive) stage.
class SelectivityTracker {
 public:
  struct StageStats {
    int64_t attempts = 0;
    int64_t resolved = 0;
    double seconds = 0.0;

    bool Measured() const { return attempts > 0; }
    double Selectivity() const {
      return attempts > 0 ? static_cast<double>(resolved) /
                                static_cast<double>(attempts)
                          : 0.0;
    }
    double CostPerAttemptUs() const {
      return attempts > 0 ? seconds * 1e6 / static_cast<double>(attempts) : 0.0;
    }
  };

  /// Folds one execution's observation into the stage's running totals.
  void Record(const std::string& stage, int64_t attempts, int64_t resolved,
              double seconds);

  StageStats Get(const std::string& stage) const;

  /// Drops all measurements (tests, and engine Quiesce between batches).
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, StageStats> stages_;
};

/// One planned stage, in execution order.
struct PlanStage {
  std::string name;
  bool enabled = true;
  /// Measured selectivity/cost backing the decision; zero when unmeasured.
  bool measured = false;
  double selectivity = 0.0;
  double cost_per_attempt_us = 0.0;
};

/// The plan for one query instance: which frames to fetch/decode (predicate
/// pushdown into the decoder and the storage layer), whether the semantic
/// cache already answers the inference part, and the cascade stage order.
struct QueryPlan {
  QueryId id = QueryId::kQ1;
  /// Input window after temporal pushdown: only the GOPs covering
  /// [first_frame, first_frame + frame_count) are fetched and decoded.
  int first_frame = 0;
  int frame_count = 0;
  /// Total frames in the stream (for explain output).
  int total_frames = 0;
  /// Spatial predicate pushed toward the decoder (Q1's crop rectangle;
  /// empty when the query has no ROI). The block codec decodes whole
  /// frames, so today this bounds the post-decode crop, not the entropy
  /// decode itself; the pushdown win is temporal (GOP/segment selection).
  RectI roi;
  /// True when the query's inference stage consults the semantic cache.
  bool semcache_enabled = false;
  /// True when a covering materialized entry already exists, so the plan
  /// needs no decode at all for the inference stage (Q2(c): the whole query
  /// becomes a metadata lookup plus a render).
  bool semcache_warm = false;
  /// Inference/filter stages in planned execution order.
  std::vector<PlanStage> stages;
};

/// Planner inputs beyond the instance itself.
struct PlanContext {
  StreamMeta meta;
  /// Whether the executing engine pushes temporal predicates into the
  /// decoder at all (the eager batch engine decodes everything, so its
  /// explain output must not claim a trimmed window).
  bool temporal_pushdown = true;
  /// Semantic cache to probe (null = feature off).
  SemanticCache* cache = nullptr;
  /// Key the executing engine would use (ignored when cache is null).
  SemanticKey key;
  /// Measured stage behaviour (null = no reordering, static order).
  const SelectivityTracker* tracker = nullptr;
  /// The executing engine's inference stages in its static order; every
  /// stage except the last is a prefilter the planner may reorder (by
  /// measured cost per resolved frame) or disable (below
  /// kMinUsefulSelectivity). The last stage is the anchor model and always
  /// runs. Empty for queries without an inference cascade.
  std::vector<std::string> stages;
};

/// A stage below this measured selectivity cannot pay for itself: the
/// planner disables it (the measured-selectivity ordering decision). The
/// probe is non-binding — content can change — so the tracker keeps
/// accumulating and a later batch can re-enable the stage.
inline constexpr double kMinUsefulSelectivity = 0.02;
/// Measurements below this many attempts are noise; keep the static order.
inline constexpr int64_t kMinMeasuredAttempts = 32;

/// Builds the plan for `instance`. Deterministic: the same instance, stream
/// metadata, cache state, and tracker totals produce the same plan.
QueryPlan PlanQuery(const QueryInstance& instance, const PlanContext& context);

/// Human-readable one-or-two-line plan description (`vcd --explain`), e.g.:
///   Q2(c) stream=0c3a… frames=[0,15)/15 semcache=warm([0,15)) decode=skipped
///   stages=[semcache]
std::string ExplainPlan(const QueryPlan& plan);

}  // namespace visualroad::queries

#endif  // VISUALROAD_QUERIES_PLAN_H_
