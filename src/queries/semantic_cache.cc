#include "queries/semantic_cache.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <list>

#include "common/metrics.h"
#include "common/serialize.h"
#include "common/trace.h"
#include "storage/sharded_store.h"

namespace visualroad::queries {

namespace {

/// FNV-1a over a string, for stable persisted-entry file names.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

constexpr uint32_t kPersistMagic = 0x43535256;  // "VRSC" little-endian.
constexpr uint32_t kPersistVersion = 1;

/// Registry instruments, shared process-wide (the cache itself may have
/// several instances; the metrics aggregate them, like the store counters).
struct Instruments {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& coalesced;
  metrics::Counter& insertions;
  metrics::Counter& extensions;
  metrics::Counter& evictions;
  metrics::Counter& persisted;
  metrics::Counter& loaded;
  metrics::Gauge& bytes_in_use;
  metrics::Gauge& entries;

  static Instruments& Get() {
    static Instruments* instruments = [] {
      auto& registry = metrics::MetricsRegistry::Global();
      return new Instruments{
          registry.GetCounter("vr_semcache_hits_total",
                              "Semantic-cache probes answered by a covering "
                              "materialized entry"),
          registry.GetCounter("vr_semcache_misses_total",
                              "Semantic-cache probes that ran the model "
                              "(single-flight leader)"),
          registry.GetCounter("vr_semcache_coalesced_total",
                              "Semantic-cache probes that waited on another "
                              "caller's in-flight compute"),
          registry.GetCounter("vr_semcache_insertions_total",
                              "New semantic-cache entries published"),
          registry.GetCounter("vr_semcache_extensions_total",
                              "Inserts merged into an existing entry "
                              "(incremental maintenance)"),
          registry.GetCounter("vr_semcache_evictions_total",
                              "Semantic-cache entries dropped to fit the "
                              "byte budget"),
          registry.GetCounter("vr_semcache_persisted_total",
                              "Semantic-cache entries written through the "
                              "sharded store"),
          registry.GetCounter("vr_semcache_loaded_total",
                              "Semantic-cache entries recovered from the "
                              "sharded store"),
          registry.GetGauge("vr_semcache_bytes_in_use",
                            "Resident bytes across semantic-cache entries"),
          registry.GetGauge("vr_semcache_entries",
                            "Resident semantic-cache entries")};
    }();
    return *instruments;
  }
};

}  // namespace

bool SemanticKey::operator==(const SemanticKey& other) const {
  // Threshold compares by bit pattern: any numeric difference is a distinct
  // materialization, and NaN never silently equals anything.
  uint64_t a, b;
  std::memcpy(&a, &threshold, sizeof(a));
  std::memcpy(&b, &other.threshold, sizeof(b));
  return stream == other.stream && model == other.model && a == b;
}

std::string SemanticKey::Serialized() const {
  uint64_t bits;
  std::memcpy(&bits, &threshold, sizeof(bits));
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%016llx|%016llx|",
                static_cast<unsigned long long>(stream),
                static_cast<unsigned long long>(bits));
  return std::string(buffer) + model;
}

void SemanticEntry::RecomputeBytes() {
  int64_t total = static_cast<int64_t>(sizeof(SemanticEntry)) +
                  static_cast<int64_t>(key.model.size());
  for (const auto& frame : detections) {
    total += static_cast<int64_t>(sizeof(frame)) +
             static_cast<int64_t>(frame.size()) *
                 static_cast<int64_t>(sizeof(vision::Detection));
  }
  bytes = total;
}

std::string ModelFingerprint(const vision::DetectorOptions& options,
                             const std::string& variant, int version) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "[in=%d,seed=%llu,recall=%g,fp=%g,jitter=%g,vis=%g,minpx=%d]@v%d",
                options.input_size,
                static_cast<unsigned long long>(options.seed),
                options.base_recall, options.false_positives_per_frame,
                options.box_jitter, options.min_visible_fraction,
                options.min_box_pixels, version);
  return variant + buffer;
}

struct SemanticCache::Impl {
  struct Slot {
    std::shared_ptr<SemanticEntry> entry;
    uint64_t tick = 0;  // Recency; larger = more recently used.
  };

  struct Inflight {
    std::mutex mutex;
    std::condition_variable ready;
    bool done = false;
    Status status = Status::Ok();
    std::shared_ptr<const SemanticEntry> result;
  };

  explicit Impl(const SemanticCacheOptions& opts) : options(opts) {}

  /// Covering ready entry for (key, range), most recent first. Caller holds
  /// the lock.
  std::shared_ptr<SemanticEntry> FindCoveringLocked(const std::string& keystr,
                                                    FrameRange range,
                                                    bool bump) {
    auto it = entries.find(keystr);
    if (it == entries.end()) return nullptr;
    Slot* best = nullptr;
    for (Slot& slot : it->second) {
      if (!slot.entry->range.Contains(range)) continue;
      if (best == nullptr || slot.tick > best->tick) best = &slot;
    }
    if (best == nullptr) return nullptr;
    if (bump) best->tick = ++tick;
    return best->entry;
  }

  /// Evicts least-recently-used entries until the budget fits. Caller holds
  /// the lock.
  void EvictLocked() {
    auto& instruments = Instruments::Get();
    while (bytes_in_use > capacity_bytes && entry_count > 0) {
      std::string victim_key;
      size_t victim_index = 0;
      uint64_t victim_tick = ~uint64_t{0};
      for (auto& [keystr, slots] : entries) {
        for (size_t i = 0; i < slots.size(); ++i) {
          if (slots[i].tick < victim_tick) {
            victim_tick = slots[i].tick;
            victim_key = keystr;
            victim_index = i;
          }
        }
      }
      auto& slots = entries[victim_key];
      bytes_in_use -= slots[victim_index].entry->bytes;
      slots.erase(slots.begin() + static_cast<int64_t>(victim_index));
      if (slots.empty()) entries.erase(victim_key);
      --entry_count;
      ++stats.evictions;
      instruments.evictions.Increment();
    }
    instruments.bytes_in_use.Set(static_cast<double>(bytes_in_use));
    instruments.entries.Set(static_cast<double>(entry_count));
  }

  SemanticCacheOptions options;
  std::mutex mutex;
  std::map<std::string, std::vector<Slot>> entries;
  std::map<std::string, std::shared_ptr<Inflight>> inflight;
  uint64_t tick = 0;
  int64_t capacity_bytes = 0;
  int64_t bytes_in_use = 0;
  int64_t entry_count = 0;
  SemanticCacheStats stats;
};

SemanticCache::SemanticCache(const SemanticCacheOptions& options)
    : impl_(std::make_unique<Impl>(options)) {
  impl_->capacity_bytes = options.capacity_bytes;
}

SemanticCache::~SemanticCache() = default;

SemanticCache& SemanticCache::Global() {
  static SemanticCache* cache = new SemanticCache();
  return *cache;
}

std::shared_ptr<const SemanticEntry> SemanticCache::Probe(
    const SemanticKey& key, FrameRange range) {
  TRACE_SPAN("semcache:probe");
  if (range.count <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::shared_ptr<SemanticEntry> found =
      impl_->FindCoveringLocked(key.Serialized(), range, /*bump=*/true);
  if (found != nullptr) {
    ++impl_->stats.hits;
    Instruments::Get().hits.Increment();
  }
  return found;
}

std::shared_ptr<const SemanticEntry> SemanticCache::Peek(
    const SemanticKey& key, FrameRange range) const {
  if (range.count <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->FindCoveringLocked(key.Serialized(), range, /*bump=*/false);
}

StatusOr<std::shared_ptr<const SemanticEntry>> SemanticCache::GetOrCompute(
    const SemanticKey& key, FrameRange range, const ComputeFn& compute,
    Outcome* outcome) {
  if (range.count <= 0) return Status::InvalidArgument("empty semantic range");
  const std::string keystr = key.Serialized();
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), "#%d+%d", range.first, range.count);
  const std::string flight_key = keystr + suffix;

  std::shared_ptr<Impl::Inflight> flight;
  bool leader = false;
  {
    TRACE_SPAN("semcache:probe");
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::shared_ptr<SemanticEntry> found =
        impl_->FindCoveringLocked(keystr, range, /*bump=*/true);
    if (found != nullptr) {
      ++impl_->stats.hits;
      Instruments::Get().hits.Increment();
      if (outcome != nullptr) *outcome = Outcome::kHit;
      return std::shared_ptr<const SemanticEntry>(found);
    }
    auto it = impl_->inflight.find(flight_key);
    if (it != impl_->inflight.end()) {
      flight = it->second;
      ++impl_->stats.coalesced;
      Instruments::Get().coalesced.Increment();
      if (outcome != nullptr) *outcome = Outcome::kCoalesced;
    } else {
      flight = std::make_shared<Impl::Inflight>();
      impl_->inflight.emplace(flight_key, flight);
      leader = true;
      ++impl_->stats.misses;
      Instruments::Get().misses.Increment();
      if (outcome != nullptr) *outcome = Outcome::kMiss;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> wait_lock(flight->mutex);
    flight->ready.wait(wait_lock, [&] { return flight->done; });
    if (!flight->status.ok()) return flight->status;
    return flight->result;
  }

  StatusOr<SemanticEntry> computed = [&] {
    TRACE_SPAN("semcache:populate");
    return compute();
  }();

  std::shared_ptr<const SemanticEntry> published;
  Status status = computed.status();
  if (computed.ok()) {
    if (!(computed->key == key) || computed->range.first != range.first ||
        computed->range.count != range.count) {
      status = Status::Internal("semantic compute returned a mismatched entry");
    } else {
      auto direct = std::make_shared<SemanticEntry>(std::move(*computed));
      Insert(*direct);
      {
        // Re-find without counting a hit: Insert may have merged the entry
        // into a larger neighbour, and this lookup is part of the miss.
        std::lock_guard<std::mutex> lock(impl_->mutex);
        published = impl_->FindCoveringLocked(keystr, range, /*bump=*/false);
      }
      // An entry larger than the whole byte budget is evicted on arrival;
      // still serve this caller the computed result, just uncached.
      if (published == nullptr) published = direct;
    }
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->inflight.erase(flight_key);
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mutex);
    flight->status = status;
    flight->result = published;
    flight->done = true;
  }
  flight->ready.notify_all();
  if (!status.ok()) return status;
  return published;
}

void SemanticCache::Insert(SemanticEntry entry) {
  if (entry.range.count <= 0 ||
      entry.detections.size() != static_cast<size_t>(entry.range.count)) {
    return;  // Malformed; dropping is safer than publishing.
  }
  entry.RecomputeBytes();
  const std::string keystr = entry.key.Serialized();
  auto& instruments = Instruments::Get();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slots = impl_->entries[keystr];

  // Fully covered by an existing entry: nothing new, refresh recency.
  for (Impl::Slot& slot : slots) {
    if (slot.entry->range.Contains(entry.range)) {
      slot.tick = ++impl_->tick;
      return;
    }
  }

  // Merge-on-insert: coalesce with every adjacent or overlapping same-key
  // entry so arriving GOPs extend a materialization instead of fragmenting
  // it. Overlapping frames keep the already-published copy (same key =>
  // same model and stream => identical content by construction).
  bool extended = false;
  for (size_t i = 0; i < slots.size();) {
    SemanticEntry& existing = *slots[i].entry;
    bool touches = existing.range.first <= entry.range.last() &&
                   entry.range.first <= existing.range.last();
    if (!touches) {
      ++i;
      continue;
    }
    int merged_first = std::min(existing.range.first, entry.range.first);
    int merged_last = std::max(existing.range.last(), entry.range.last());
    std::vector<std::vector<vision::Detection>> merged(
        static_cast<size_t>(merged_last - merged_first));
    for (int f = 0; f < entry.range.count; ++f) {
      merged[static_cast<size_t>(entry.range.first - merged_first + f)] =
          std::move(entry.detections[static_cast<size_t>(f)]);
    }
    for (int f = 0; f < existing.range.count; ++f) {
      merged[static_cast<size_t>(existing.range.first - merged_first + f)] =
          std::move(existing.detections[static_cast<size_t>(f)]);
    }
    entry.range = FrameRange{merged_first, merged_last - merged_first};
    entry.detections = std::move(merged);
    entry.RecomputeBytes();
    impl_->bytes_in_use -= existing.bytes;
    slots.erase(slots.begin() + static_cast<int64_t>(i));
    --impl_->entry_count;
    extended = true;
    // Restart: the grown range may now touch further entries.
    i = 0;
  }

  auto published = std::make_shared<SemanticEntry>(std::move(entry));
  impl_->bytes_in_use += published->bytes;
  ++impl_->entry_count;
  slots.push_back(Impl::Slot{std::move(published), ++impl_->tick});
  if (extended) {
    ++impl_->stats.extensions;
    instruments.extensions.Increment();
  } else {
    ++impl_->stats.insertions;
    instruments.insertions.Increment();
  }
  impl_->EvictLocked();
}

std::vector<std::vector<vision::Detection>> SemanticCache::Slice(
    const SemanticEntry& entry, FrameRange range) {
  std::vector<std::vector<vision::Detection>> out;
  if (!entry.range.Contains(range)) return out;
  out.reserve(static_cast<size_t>(range.count));
  for (int f = 0; f < range.count; ++f) {
    out.push_back(entry.detections[static_cast<size_t>(
        range.first - entry.range.first + f)]);
  }
  return out;
}

Status SemanticCache::Persist() {
  if (impl_->options.store == nullptr) return Status::Ok();
  TRACE_SPAN("semcache:persist");
  std::vector<std::shared_ptr<SemanticEntry>> snapshot;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& [keystr, slots] : impl_->entries) {
      for (auto& slot : slots) snapshot.push_back(slot.entry);
    }
  }
  auto& instruments = Instruments::Get();
  for (const auto& entry : snapshot) {
    ByteWriter writer;
    writer.U32(kPersistMagic);
    writer.U32(kPersistVersion);
    writer.U64(entry->key.stream);
    writer.Str(entry->key.model);
    writer.F64(entry->key.threshold);
    writer.I32(entry->range.first);
    writer.I32(entry->range.count);
    writer.I32(entry->width);
    writer.I32(entry->height);
    writer.F64(entry->fps);
    for (const auto& frame : entry->detections) {
      writer.U32(static_cast<uint32_t>(frame.size()));
      for (const vision::Detection& d : frame) {
        writer.U8(static_cast<uint8_t>(d.object_class));
        writer.I32(d.box.x0);
        writer.I32(d.box.y0);
        writer.I32(d.box.x1);
        writer.I32(d.box.y1);
        writer.F64(d.score);
        writer.I32(d.entity_id);
      }
    }
    char name[96];
    std::snprintf(name, sizeof(name), "%s%016llx-%d-%d",
                  impl_->options.store_prefix.c_str(),
                  static_cast<unsigned long long>(
                      Fnv1a(entry->key.Serialized())),
                  entry->range.first, entry->range.count);
    VR_RETURN_IF_ERROR(impl_->options.store->Put(name, writer.bytes()));
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      ++impl_->stats.persisted;
    }
    instruments.persisted.Increment();
  }
  return Status::Ok();
}

Status SemanticCache::LoadPersisted() {
  if (impl_->options.store == nullptr) return Status::Ok();
  TRACE_SPAN("semcache:load");
  auto& instruments = Instruments::Get();
  const std::string& prefix = impl_->options.store_prefix;
  for (const std::string& name : impl_->options.store->List()) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        impl_->options.store->Get(name));
    ByteCursor cursor(bytes);
    if (cursor.U32() != kPersistMagic || cursor.U32() != kPersistVersion) {
      return Status::DataLoss("semantic cache entry header mismatch: " + name);
    }
    SemanticEntry entry;
    entry.key.stream = cursor.U64();
    entry.key.model = cursor.Str();
    entry.key.threshold = cursor.F64();
    entry.range.first = cursor.I32();
    entry.range.count = cursor.I32();
    entry.width = cursor.I32();
    entry.height = cursor.I32();
    entry.fps = cursor.F64();
    if (!cursor.ok() || entry.range.count <= 0 || entry.range.count > (1 << 24)) {
      return Status::DataLoss("semantic cache entry truncated: " + name);
    }
    entry.detections.resize(static_cast<size_t>(entry.range.count));
    for (auto& frame : entry.detections) {
      uint32_t count = cursor.U32();
      if (!cursor.ok() || count > (1u << 20)) {
        return Status::DataLoss("semantic cache entry truncated: " + name);
      }
      frame.resize(count);
      for (vision::Detection& d : frame) {
        d.object_class = static_cast<sim::ObjectClass>(cursor.U8());
        d.box.x0 = cursor.I32();
        d.box.y0 = cursor.I32();
        d.box.x1 = cursor.I32();
        d.box.y1 = cursor.I32();
        d.score = cursor.F64();
        d.entity_id = cursor.I32();
      }
    }
    if (!cursor.ok()) {
      return Status::DataLoss("semantic cache entry truncated: " + name);
    }
    Insert(std::move(entry));
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      ++impl_->stats.loaded;
    }
    instruments.loaded.Increment();
  }
  return Status::Ok();
}

std::vector<std::shared_ptr<const SemanticEntry>> SemanticCache::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::pair<uint64_t, std::shared_ptr<const SemanticEntry>>> ticked;
  for (const auto& [keystr, slots] : impl_->entries) {
    for (const Impl::Slot& slot : slots) {
      ticked.emplace_back(slot.tick, slot.entry);
    }
  }
  std::sort(ticked.begin(), ticked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::shared_ptr<const SemanticEntry>> out;
  out.reserve(ticked.size());
  for (auto& [tick, entry] : ticked) out.push_back(std::move(entry));
  return out;
}

void SemanticCache::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->entries.clear();
  impl_->bytes_in_use = 0;
  impl_->entry_count = 0;
  auto& instruments = Instruments::Get();
  instruments.bytes_in_use.Set(0);
  instruments.entries.Set(0);
}

void SemanticCache::set_capacity_bytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity_bytes = bytes;
  impl_->EvictLocked();
}

int64_t SemanticCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->capacity_bytes;
}

SemanticCacheStats SemanticCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  SemanticCacheStats out = impl_->stats;
  out.bytes_in_use = impl_->bytes_in_use;
  out.entries = impl_->entry_count;
  return out;
}

}  // namespace visualroad::queries
