#ifndef VISUALROAD_QUERIES_REFERENCE_H_
#define VISUALROAD_QUERIES_REFERENCE_H_

#include <vector>

#include "queries/params.h"
#include "video/webvtt.h"
#include "vision/alpr.h"
#include "vision/miniyolo.h"
#include "vision/stitcher.h"

namespace visualroad::queries {

/// Output panorama dimensions for a dataset (Q9 stitches into a 2:1
/// equirectangular frame twice the face width).
inline int PanoramaWidth(const sim::CityConfig& config) { return config.width * 2; }
inline int PanoramaHeight(const sim::CityConfig& config) { return config.width; }

/// Shared context for the reference implementations: the dataset (for ground
/// truth and panoramic groups) and the specified vision algorithms.
struct ReferenceContext {
  const sim::Dataset* dataset = nullptr;
  vision::DetectorOptions detector_options;
  double plate_match_threshold = 0.80;
};

/// Result of a reference query execution. Video-producing queries fill
/// `video`; Q2(c) also fills per-frame `detections`.
struct ReferenceResult {
  video::Video video;
  std::vector<std::vector<vision::Detection>> detections;
};

/// The Visual Road reference implementation (Section 5): executes query
/// `instance` over decoded input `input` (already decoded by the caller so
/// engines and the validator share identical pixels). For Q8/Q9/Q10 the
/// input argument is ignored and inputs are drawn from the context dataset.
StatusOr<ReferenceResult> RunReference(const ReferenceContext& context,
                                       const QueryInstance& instance,
                                       const video::Video& input);

// --- Individual query kernels (used by the engines with their own
// --- execution strategies, and composed by RunReference) ---

/// Q1: crop frames to the rectangle and trim to [t1, t2).
StatusOr<video::Video> SelectQuery(const video::Video& input, const RectI& rect,
                                   double t1, double t2);

/// Q2(a): grayscale via chroma drop.
video::Video GrayscaleQuery(const video::Video& input);

/// Q2(b): d x d Gaussian blur per frame.
StatusOr<video::Video> BlurQuery(const video::Video& input, int d);

/// Q2(c): per-frame object detection + class-colour box video.
StatusOr<ReferenceResult> BoxesQuery(const video::Video& input,
                                     const std::vector<sim::FrameGroundTruth>& truth,
                                     sim::ObjectClass object_class,
                                     const vision::MiniYolo& detector,
                                     int first_frame_index = 0);

/// Builds a Q2(c)-style box result (class-filtered detections plus rendered
/// box frames) from per-frame detections that are still unfiltered by object
/// class. Touches no input pixels: only stream geometry is needed, which is
/// what lets a warm semantic cache answer Q2(c) with zero decoder
/// invocations. Engines use this for their cold path too, so cached and
/// uncached results are byte-identical by construction.
ReferenceResult RenderBoxesFromDetections(
    int width, int height, double fps,
    const std::vector<std::vector<vision::Detection>>& unfiltered,
    sim::ObjectClass object_class);

/// Q6(a): omega-coalesce overlay of a box video onto the input.
StatusOr<video::Video> UnionBoxesQuery(const video::Video& input,
                                       const video::Video& boxes);

/// Q6(b): render and overlay the caption track.
StatusOr<video::Video> UnionCaptionsQuery(const video::Video& input,
                                          const video::WebVttDocument& captions);

/// Q8 support: one vehicle tracking segment.
struct TrackingSegment {
  int asset_index = 0;   // Which traffic video.
  int first_frame = 0;   // Inclusive.
  int last_frame = 0;    // Inclusive.
};

/// Q8: scans every traffic video for the plate with the recognition function
/// (ALPR matched filter over detector-proposed vehicle regions), forms
/// tracking segments, and concatenates them ordered by entry time. The
/// segments found are returned through `segments_out` when non-null.
StatusOr<video::Video> TrackingQuery(const ReferenceContext& context,
                                     const std::string& plate,
                                     std::vector<TrackingSegment>* segments_out);

/// Q9: stitch one panoramic rig's four faces into an equirectangular video.
StatusOr<video::Video> StitchQuery(const ReferenceContext& context, int pano_group);

/// Q10: tile a 360-degree video at mixed bitrates and downsample to the
/// client resolution.
StatusOr<video::Video> TileStreamQuery(const video::Video& panorama,
                                       const std::array<int64_t, 9>& bitrates,
                                       int client_width, int client_height,
                                       video::codec::Profile profile);

/// Decodes the four face videos of a panoramic group and returns the face
/// cameras (shared by Q9 implementations across engines).
StatusOr<std::array<video::Video, 4>> DecodePanoFaces(
    const sim::Dataset& dataset, int pano_group,
    std::array<sim::Camera, 4>* cameras_out, double* forward_yaw_out);

}  // namespace visualroad::queries

#endif  // VISUALROAD_QUERIES_REFERENCE_H_
