#include "queries/params.h"

#include <algorithm>

namespace visualroad::queries {

const std::array<QueryId, kQueryCount>& AllQueries() {
  static const std::array<QueryId, kQueryCount> kAll = {
      QueryId::kQ1,  QueryId::kQ2a, QueryId::kQ2b, QueryId::kQ2c, QueryId::kQ2d,
      QueryId::kQ3,  QueryId::kQ4,  QueryId::kQ5,  QueryId::kQ6a, QueryId::kQ6b,
      QueryId::kQ7,  QueryId::kQ8,  QueryId::kQ9,  QueryId::kQ10};
  return kAll;
}

const char* QueryName(QueryId id) {
  switch (id) {
    case QueryId::kQ1:
      return "Q1";
    case QueryId::kQ2a:
      return "Q2(a)";
    case QueryId::kQ2b:
      return "Q2(b)";
    case QueryId::kQ2c:
      return "Q2(c)";
    case QueryId::kQ2d:
      return "Q2(d)";
    case QueryId::kQ3:
      return "Q3";
    case QueryId::kQ4:
      return "Q4";
    case QueryId::kQ5:
      return "Q5";
    case QueryId::kQ6a:
      return "Q6(a)";
    case QueryId::kQ6b:
      return "Q6(b)";
    case QueryId::kQ7:
      return "Q7";
    case QueryId::kQ8:
      return "Q8";
    case QueryId::kQ9:
      return "Q9";
    case QueryId::kQ10:
      return "Q10";
  }
  return "Q?";
}

bool IsMicrobenchmark(QueryId id) {
  switch (id) {
    case QueryId::kQ7:
    case QueryId::kQ8:
    case QueryId::kQ9:
    case QueryId::kQ10:
      return false;
    default:
      return true;
  }
}

ValidationKind ValidationFor(QueryId id) {
  switch (id) {
    case QueryId::kQ2c:
    case QueryId::kQ2d:
      return ValidationKind::kSemantic;
    case QueryId::kQ7:
    case QueryId::kQ8:
    case QueryId::kQ10:
      return ValidationKind::kNone;
    default:
      return ValidationKind::kFrame;  // Includes Q9 (30 dB threshold).
  }
}

namespace {

/// Picks a random traffic-asset index.
StatusOr<int> RandomTrafficIndex(const sim::Dataset& dataset, Pcg32& rng) {
  int count = static_cast<int>(dataset.TrafficAssets().size());
  if (count == 0) return Status::FailedPrecondition("dataset has no traffic videos");
  return static_cast<int>(rng.NextBounded(static_cast<uint32_t>(count)));
}

/// Picks a random visible plate from the dataset's ground truth; falls back
/// to any vehicle's plate when no sighting exists.
std::string RandomQueriedPlate(const sim::Dataset& dataset, Pcg32& rng) {
  std::vector<std::string> sighted;
  for (const sim::VideoAsset* asset : dataset.TrafficAssets()) {
    for (const sim::FrameGroundTruth& frame : asset->ground_truth) {
      for (const sim::GroundTruthBox& box : frame.boxes) {
        if (box.plate_visible) sighted.push_back(box.plate);
      }
    }
  }
  if (!sighted.empty()) {
    return sighted[rng.NextBounded(static_cast<uint32_t>(sighted.size()))];
  }
  for (const sim::VideoAsset* asset : dataset.TrafficAssets()) {
    for (const sim::FrameGroundTruth& frame : asset->ground_truth) {
      if (!frame.boxes.empty() && !frame.boxes.front().plate.empty()) {
        return frame.boxes.front().plate;
      }
    }
  }
  return "ZZZZZZ";  // A plate no vehicle carries: an empty-result query.
}

}  // namespace

StatusOr<QueryInstance> SampleQueryInstance(QueryId id, const sim::Dataset& dataset,
                                            Pcg32& rng,
                                            const SamplerOptions& options) {
  QueryInstance instance;
  instance.id = id;

  const sim::CityConfig& config = dataset.config;
  int rx = config.width, ry = config.height;
  double duration = config.duration_seconds;

  if (id != QueryId::kQ9 && id != QueryId::kQ10) {
    VR_ASSIGN_OR_RETURN(instance.video_index, RandomTrafficIndex(dataset, rng));
  }

  switch (id) {
    case QueryId::kQ1: {
      // 0 <= x1 < x2 <= Rx etc. (Table 3); rejection-free sampling by
      // ordering two distinct draws.
      int x1 = static_cast<int>(rng.NextBounded(static_cast<uint32_t>(rx)));
      int x2 = static_cast<int>(rng.NextInt(x1 + 1, rx));
      int y1 = static_cast<int>(rng.NextBounded(static_cast<uint32_t>(ry)));
      int y2 = static_cast<int>(rng.NextInt(y1 + 1, ry));
      double t1 = rng.NextDouble(0.0, duration);
      double t2 = rng.NextDouble(t1, duration);
      instance.q1_rect = {x1, y1, x2, y2};
      instance.q1_t1 = t1;
      instance.q1_t2 = t2;
      break;
    }
    case QueryId::kQ2a:
      break;
    case QueryId::kQ2b: {
      // d in [3, 20]; the separable kernel needs odd d, so even draws round
      // up (preserving uniformity over realisable kernels).
      int d = static_cast<int>(rng.NextInt(3, 20));
      if (d % 2 == 0) ++d;
      instance.q2b_d = d;
      break;
    }
    case QueryId::kQ2c:
    case QueryId::kQ7:
      instance.object_class = rng.NextBool(0.5) ? sim::ObjectClass::kVehicle
                                                : sim::ObjectClass::kPedestrian;
      break;
    case QueryId::kQ2d: {
      instance.q2d_m = static_cast<int>(rng.NextInt(2, 60));
      instance.q2d_epsilon = rng.NextDouble(0.05, 0.95);
      break;
    }
    case QueryId::kQ3: {
      int nx = static_cast<int>(rng.NextInt(1, 3));
      int ny = static_cast<int>(rng.NextInt(1, 3));
      instance.q3_dx = std::max(8, rx >> nx);
      instance.q3_dy = std::max(8, ry >> ny);
      int cols = (rx + instance.q3_dx - 1) / instance.q3_dx;
      int rows = (ry + instance.q3_dy - 1) / instance.q3_dy;
      instance.q3_bitrates.resize(static_cast<size_t>(cols) * rows);
      for (int64_t& bitrate : instance.q3_bitrates) {
        bitrate = int64_t{1} << rng.NextInt(16, 22);
      }
      break;
    }
    case QueryId::kQ4: {
      instance.q45_alpha = 1 << rng.NextInt(1, options.max_upsample_exponent);
      instance.q45_beta = 1 << rng.NextInt(1, options.max_upsample_exponent);
      break;
    }
    case QueryId::kQ5: {
      // Keep the downsampled frame at least 8 pixels on a side.
      int max_nx = 1, max_ny = 1;
      while ((rx >> (max_nx + 1)) >= 8 && max_nx < options.max_downsample_exponent) {
        ++max_nx;
      }
      while ((ry >> (max_ny + 1)) >= 8 && max_ny < options.max_downsample_exponent) {
        ++max_ny;
      }
      instance.q45_alpha = 1 << rng.NextInt(1, max_nx);
      instance.q45_beta = 1 << rng.NextInt(1, max_ny);
      break;
    }
    case QueryId::kQ6a:
    case QueryId::kQ6b:
      break;
    case QueryId::kQ8:
      instance.q8_plate = RandomQueriedPlate(dataset, rng);
      break;
    case QueryId::kQ9:
    case QueryId::kQ10: {
      int groups = dataset.PanoramicGroupCount();
      if (groups == 0) {
        return Status::FailedPrecondition("dataset has no panoramic cameras");
      }
      instance.pano_group = static_cast<int>(rng.NextBounded(static_cast<uint32_t>(groups)));
      if (id == QueryId::kQ10) {
        int64_t b_h = int64_t{1} << 21;
        int64_t b_l = int64_t{1} << 17;
        for (int64_t& bitrate : instance.q10_bitrates) {
          bitrate = rng.NextBool(0.4) ? b_h : b_l;
        }
        // Client resolution: a headset-like fraction of the panorama.
        instance.q10_client_width = std::max(16, rx);
        instance.q10_client_height = std::max(16, rx / 2);
        break;
      }
      break;
    }
  }
  return instance;
}

}  // namespace visualroad::queries
