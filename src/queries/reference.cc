#include "queries/reference.h"

#include <algorithm>
#include <cmath>

#include "video/image_ops.h"
#include "vision/background.h"
#include "vision/overlay.h"
#include "vision/tiling.h"

namespace visualroad::queries {

using video::Video;

StatusOr<Video> SelectQuery(const Video& input, const RectI& rect, double t1,
                            double t2) {
  if (input.frames.empty()) return Status::InvalidArgument("empty input video");
  if (t2 < t1) return Status::InvalidArgument("temporal range is inverted");
  int first = std::clamp(static_cast<int>(t1 * input.fps), 0, input.FrameCount() - 1);
  int last = std::clamp(static_cast<int>(std::ceil(t2 * input.fps)), first + 1,
                        input.FrameCount());
  Video out;
  out.fps = input.fps;
  out.frames.reserve(static_cast<size_t>(last - first));
  for (int f = first; f < last; ++f) {
    VR_ASSIGN_OR_RETURN(video::Frame cropped, video::Crop(input.frames[f], rect));
    out.frames.push_back(std::move(cropped));
  }
  return out;
}

Video GrayscaleQuery(const Video& input) {
  // PMap with f(y, u, v) = (y, 0, 0) in the paper's notation (neutral chroma).
  Video out;
  out.fps = input.fps;
  out.frames.reserve(input.frames.size());
  for (const video::Frame& frame : input.frames) {
    out.frames.push_back(video::Grayscale(frame));
  }
  return out;
}

StatusOr<Video> BlurQuery(const Video& input, int d) {
  Video out;
  out.fps = input.fps;
  out.frames.reserve(input.frames.size());
  for (const video::Frame& frame : input.frames) {
    VR_ASSIGN_OR_RETURN(video::Frame blurred, video::GaussianBlur(frame, d));
    out.frames.push_back(std::move(blurred));
  }
  return out;
}

StatusOr<ReferenceResult> BoxesQuery(const Video& input,
                                     const std::vector<sim::FrameGroundTruth>& truth,
                                     sim::ObjectClass object_class,
                                     const vision::MiniYolo& detector,
                                     int first_frame_index) {
  ReferenceResult result;
  result.video.fps = input.fps;
  static const sim::FrameGroundTruth kEmpty;
  for (int f = 0; f < input.FrameCount(); ++f) {
    size_t truth_index = static_cast<size_t>(first_frame_index + f);
    const sim::FrameGroundTruth& gt =
        truth_index < truth.size() ? truth[truth_index] : kEmpty;
    std::vector<vision::Detection> detections =
        detector.Detect(input.frames[static_cast<size_t>(f)], gt,
                        first_frame_index + f);
    // Keep only the queried class.
    detections.erase(std::remove_if(detections.begin(), detections.end(),
                                    [object_class](const vision::Detection& d) {
                                      return d.object_class != object_class;
                                    }),
                     detections.end());
    result.video.frames.push_back(vision::RenderDetectionFrame(
        input.Width(), input.Height(), detections));
    result.detections.push_back(std::move(detections));
  }
  return result;
}

ReferenceResult RenderBoxesFromDetections(
    int width, int height, double fps,
    const std::vector<std::vector<vision::Detection>>& unfiltered,
    sim::ObjectClass object_class) {
  ReferenceResult result;
  result.video.fps = fps;
  result.video.frames.reserve(unfiltered.size());
  result.detections.reserve(unfiltered.size());
  for (const std::vector<vision::Detection>& frame : unfiltered) {
    std::vector<vision::Detection> kept;
    kept.reserve(frame.size());
    for (const vision::Detection& d : frame) {
      if (d.object_class == object_class) kept.push_back(d);
    }
    result.video.frames.push_back(
        vision::RenderDetectionFrame(width, height, kept));
    result.detections.push_back(std::move(kept));
  }
  return result;
}

StatusOr<Video> UnionBoxesQuery(const Video& input, const Video& boxes) {
  // The box video may arrive through a codec (the VCD's encoded variant),
  // which perturbs the omega sentinel by a few code levels; the coalesce
  // therefore uses the tolerant sentinel test so the encoded and serialized
  // input formats yield the same join.
  return video::JoinP(input, boxes, [](const video::Yuv& base,
                                       const video::Yuv& overlay) {
    return video::IsNearOmega(overlay) ? base : overlay;
  });
}

StatusOr<Video> UnionCaptionsQuery(const Video& input,
                                   const video::WebVttDocument& captions) {
  Video out;
  out.fps = input.fps;
  out.frames.reserve(input.frames.size());
  for (int f = 0; f < input.FrameCount(); ++f) {
    double seconds = f / input.fps;
    video::Frame overlay = vision::RenderCaptionFrame(input.Width(), input.Height(),
                                                      captions, seconds);
    const video::Frame& base = input.frames[static_cast<size_t>(f)];
    video::Frame merged(base.width(), base.height());
    for (int y = 0; y < base.height(); ++y) {
      for (int x = 0; x < base.width(); ++x) {
        video::Yuv pixel = video::OmegaCoalesce(
            {base.Y(x, y), base.U(x, y), base.V(x, y)},
            {overlay.Y(x, y), overlay.U(x, y), overlay.V(x, y)});
        merged.SetPixel(x, y, pixel.y, pixel.u, pixel.v);
      }
    }
    out.frames.push_back(std::move(merged));
  }
  return out;
}

StatusOr<Video> TrackingQuery(const ReferenceContext& context,
                              const std::string& plate,
                              std::vector<TrackingSegment>* segments_out) {
  if (context.dataset == nullptr) {
    return Status::InvalidArgument("tracking query needs a dataset context");
  }
  vision::MiniYolo detector(context.detector_options);
  vision::PlateRecognizer recognizer(context.plate_match_threshold);

  struct Sighting {
    TrackingSegment segment;
    double entry_seconds;
  };
  std::vector<Sighting> sightings;
  std::vector<const sim::VideoAsset*> traffic = context.dataset->TrafficAssets();
  std::vector<Video> decoded(traffic.size());

  for (size_t a = 0; a < traffic.size(); ++a) {
    VR_ASSIGN_OR_RETURN(decoded[a], video::codec::Decode(traffic[a]->container.video));
    const Video& vid = decoded[a];

    int run_start = -1;
    for (int f = 0; f < vid.FrameCount(); ++f) {
      // Recognition function L: detector proposes vehicle regions; the ALPR
      // matched filter searches each for the queried plate.
      static const sim::FrameGroundTruth kEmptyTruth;
      const sim::FrameGroundTruth& gt =
          static_cast<size_t>(f) < traffic[a]->ground_truth.size()
              ? traffic[a]->ground_truth[static_cast<size_t>(f)]
              : kEmptyTruth;
      std::vector<vision::Detection> detections =
          detector.Detect(vid.frames[static_cast<size_t>(f)], gt, f);
      bool found = false;
      for (const vision::Detection& det : detections) {
        if (det.object_class != sim::ObjectClass::kVehicle) continue;
        vision::PlateSearchResult match = recognizer.FindPlate(
            vid.frames[static_cast<size_t>(f)], det.box, plate);
        if (match.found) {
          found = true;
          break;
        }
      }
      if (found && run_start < 0) run_start = f;
      if (!found && run_start >= 0) {
        sightings.push_back({{static_cast<int>(a), run_start, f - 1},
                             run_start / vid.fps});
        run_start = -1;
      }
    }
    if (run_start >= 0) {
      sightings.push_back({{static_cast<int>(a), run_start, vid.FrameCount() - 1},
                           run_start / vid.fps});
    }
  }

  // Temporally order by entry time and concatenate the VTSs.
  std::sort(sightings.begin(), sightings.end(),
            [](const Sighting& x, const Sighting& y) {
              return x.entry_seconds < y.entry_seconds;
            });

  Video out;
  out.fps = context.dataset->config.fps;
  for (const Sighting& sighting : sightings) {
    const Video& vid = decoded[static_cast<size_t>(sighting.segment.asset_index)];
    for (int f = sighting.segment.first_frame; f <= sighting.segment.last_frame; ++f) {
      out.frames.push_back(vid.frames[static_cast<size_t>(f)]);
    }
    if (segments_out != nullptr) segments_out->push_back(sighting.segment);
  }
  return out;
}

StatusOr<std::array<Video, 4>> DecodePanoFaces(const sim::Dataset& dataset,
                                               int pano_group,
                                               std::array<sim::Camera, 4>* cameras_out,
                                               double* forward_yaw_out) {
  std::vector<const sim::VideoAsset*> faces = dataset.PanoramicGroup(pano_group);
  for (const sim::VideoAsset* face : faces) {
    if (face == nullptr) {
      return Status::NotFound("panoramic group is missing a face video");
    }
  }
  std::array<Video, 4> decoded;
  for (int f = 0; f < 4; ++f) {
    VR_ASSIGN_OR_RETURN(
        decoded[static_cast<size_t>(f)],
        video::codec::Decode(faces[static_cast<size_t>(f)]->container.video));
  }
  if (cameras_out != nullptr) {
    for (int f = 0; f < 4; ++f) {
      (*cameras_out)[static_cast<size_t>(f)] =
          faces[static_cast<size_t>(f)]->camera.MakeCamera(dataset.config.width,
                                                           dataset.config.height);
    }
  }
  if (forward_yaw_out != nullptr) {
    *forward_yaw_out = faces[0]->camera.pose.yaw;
  }
  return decoded;
}

StatusOr<Video> StitchQuery(const ReferenceContext& context, int pano_group) {
  if (context.dataset == nullptr) {
    return Status::InvalidArgument("stitch query needs a dataset context");
  }
  std::array<sim::Camera, 4> cameras{
      sim::Camera({}, {}), sim::Camera({}, {}), sim::Camera({}, {}),
      sim::Camera({}, {})};
  double forward_yaw = 0.0;
  using FaceArray = std::array<Video, 4>;
  VR_ASSIGN_OR_RETURN(FaceArray faces, DecodePanoFaces(*context.dataset, pano_group,
                                                       &cameras, &forward_yaw));
  return vision::StitchEquirectVideo(
      std::array<const Video*, 4>{&faces[0], &faces[1], &faces[2], &faces[3]},
      cameras, PanoramaWidth(context.dataset->config),
      PanoramaHeight(context.dataset->config), forward_yaw);
}

StatusOr<Video> TileStreamQuery(const Video& panorama,
                                const std::array<int64_t, 9>& bitrates,
                                int client_width, int client_height,
                                video::codec::Profile profile) {
  if (panorama.frames.empty()) return Status::InvalidArgument("empty panorama");
  int tile_w = (panorama.Width() + 2) / 3;
  int tile_h = (panorama.Height() + 2) / 3;
  std::vector<int64_t> rates(bitrates.begin(), bitrates.end());
  VR_ASSIGN_OR_RETURN(Video tiled, vision::TiledReencode(panorama, tile_w, tile_h,
                                                         rates, profile));
  Video out;
  out.fps = panorama.fps;
  out.frames.reserve(tiled.frames.size());
  for (const video::Frame& frame : tiled.frames) {
    VR_ASSIGN_OR_RETURN(video::Frame down,
                        video::Downsample(frame, client_width, client_height));
    out.frames.push_back(std::move(down));
  }
  return out;
}

StatusOr<ReferenceResult> RunReference(const ReferenceContext& context,
                                       const QueryInstance& instance,
                                       const Video& input) {
  ReferenceResult result;
  const sim::Dataset* dataset = context.dataset;
  const sim::VideoAsset* asset = nullptr;
  if (dataset != nullptr && instance.id != QueryId::kQ9 &&
      instance.id != QueryId::kQ10 && instance.id != QueryId::kQ8) {
    std::vector<const sim::VideoAsset*> traffic = dataset->TrafficAssets();
    if (instance.video_index >= 0 &&
        static_cast<size_t>(instance.video_index) < traffic.size()) {
      asset = traffic[static_cast<size_t>(instance.video_index)];
    }
  }
  static const std::vector<sim::FrameGroundTruth> kNoTruth;
  const std::vector<sim::FrameGroundTruth>& truth =
      asset != nullptr ? asset->ground_truth : kNoTruth;

  switch (instance.id) {
    case QueryId::kQ1: {
      VR_ASSIGN_OR_RETURN(result.video, SelectQuery(input, instance.q1_rect,
                                                    instance.q1_t1, instance.q1_t2));
      return result;
    }
    case QueryId::kQ2a:
      result.video = GrayscaleQuery(input);
      return result;
    case QueryId::kQ2b: {
      VR_ASSIGN_OR_RETURN(result.video, BlurQuery(input, instance.q2b_d));
      return result;
    }
    case QueryId::kQ2c: {
      vision::MiniYolo detector(context.detector_options);
      return BoxesQuery(input, truth, instance.object_class, detector);
    }
    case QueryId::kQ2d: {
      VR_ASSIGN_OR_RETURN(result.video,
                          vision::MaskBackgroundRunning(input, instance.q2d_m,
                                                        instance.q2d_epsilon));
      return result;
    }
    case QueryId::kQ3: {
      VR_ASSIGN_OR_RETURN(
          result.video,
          vision::TiledReencode(input, instance.q3_dx, instance.q3_dy,
                                instance.q3_bitrates,
                                video::codec::Profile::kH264Like));
      return result;
    }
    case QueryId::kQ4: {
      result.video.fps = input.fps;
      for (const video::Frame& frame : input.frames) {
        VR_ASSIGN_OR_RETURN(
            video::Frame up,
            video::BilinearResize(frame, frame.width() * instance.q45_alpha,
                                  frame.height() * instance.q45_beta));
        result.video.frames.push_back(std::move(up));
      }
      return result;
    }
    case QueryId::kQ5: {
      result.video.fps = input.fps;
      for (const video::Frame& frame : input.frames) {
        VR_ASSIGN_OR_RETURN(
            video::Frame down,
            video::Downsample(frame, std::max(1, frame.width() / instance.q45_alpha),
                              std::max(1, frame.height() / instance.q45_beta)));
        result.video.frames.push_back(std::move(down));
      }
      return result;
    }
    case QueryId::kQ6a: {
      // B = Q2c(V_i) is generated OFFLINE by the VCD (Section 4.1.1) and
      // exposed as a container track; Q6(a) itself is only the join. Use
      // the prepared encoded box video when present, otherwise fall back to
      // computing B inline (unprepared datasets).
      const video::container::MetadataTrack* box_track =
          asset != nullptr ? asset->container.FindTrack("BOXV") : nullptr;
      video::Video boxes;
      if (box_track != nullptr) {
        VR_ASSIGN_OR_RETURN(video::container::Container box_container,
                            video::container::Demux(box_track->payload));
        VR_ASSIGN_OR_RETURN(boxes, video::codec::Decode(box_container.video));
      } else {
        vision::MiniYolo detector(context.detector_options);
        ReferenceResult computed;
        VR_ASSIGN_OR_RETURN(computed,
                            BoxesQuery(input, truth, instance.object_class, detector));
        boxes = std::move(computed.video);
        result.detections = std::move(computed.detections);
      }
      VR_ASSIGN_OR_RETURN(result.video, UnionBoxesQuery(input, boxes));
      return result;
    }
    case QueryId::kQ6b: {
      const video::container::MetadataTrack* track =
          asset != nullptr ? asset->container.FindTrack("WVTT") : nullptr;
      if (track == nullptr) {
        return Status::FailedPrecondition("input video has no caption track");
      }
      std::string text(track->payload.begin(), track->payload.end());
      VR_ASSIGN_OR_RETURN(video::WebVttDocument captions, video::ParseWebVtt(text));
      VR_ASSIGN_OR_RETURN(result.video, UnionCaptionsQuery(input, captions));
      return result;
    }
    case QueryId::kQ7: {
      // V^o = Q2d(Q6a(V, Q2c(V, A, {o}))) — Table 6.
      vision::MiniYolo detector(context.detector_options);
      ReferenceResult boxes;
      VR_ASSIGN_OR_RETURN(boxes,
                          BoxesQuery(input, truth, instance.object_class, detector));
      VR_ASSIGN_OR_RETURN(Video merged, UnionBoxesQuery(input, boxes.video));
      VR_ASSIGN_OR_RETURN(result.video,
                          vision::MaskBackgroundRunning(merged, instance.q2d_m,
                                                        instance.q2d_epsilon));
      result.detections = std::move(boxes.detections);
      return result;
    }
    case QueryId::kQ8: {
      VR_ASSIGN_OR_RETURN(result.video,
                          TrackingQuery(context, instance.q8_plate, nullptr));
      return result;
    }
    case QueryId::kQ9: {
      VR_ASSIGN_OR_RETURN(result.video, StitchQuery(context, instance.pano_group));
      return result;
    }
    case QueryId::kQ10: {
      VR_ASSIGN_OR_RETURN(Video panorama, StitchQuery(context, instance.pano_group));
      VR_ASSIGN_OR_RETURN(
          result.video,
          TileStreamQuery(panorama, instance.q10_bitrates, instance.q10_client_width,
                          instance.q10_client_height,
                          video::codec::Profile::kH264Like));
      return result;
    }
  }
  return Status::Unimplemented("unknown query id");
}

}  // namespace visualroad::queries
