#ifndef VISUALROAD_QUERIES_SEMANTIC_CACHE_H_
#define VISUALROAD_QUERIES_SEMANTIC_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "vision/miniyolo.h"

namespace visualroad::storage {
class ShardedStore;
}  // namespace visualroad::storage

namespace visualroad::queries {

/// Identity of one materialized inference result set (DeepLens/VDMS-style
/// semantic caching: the decisive win at scale is never re-running the CNN,
/// so inference outputs are first-class stored objects keyed by exactly what
/// produced them).
///
/// `threshold` is part of the key and is compared exactly (bit pattern):
/// detections produced under one score floor are never reused to answer a
/// probe with a different floor, in either direction. Filtering a looser
/// result down to a stricter threshold would be numerically valid for score
/// cuts, but the floor also feeds the producing model's early-exit
/// behaviour; treating any mismatch as a miss keeps reuse provably exact.
struct SemanticKey {
  /// StreamIdentity() of the input bitstream the model consumed.
  uint64_t stream = 0;
  /// Model fingerprint including configuration and version; see
  /// ModelFingerprint(). A version bump changes the key, so stale entries
  /// become unreachable (and age out of the LRU) rather than being served.
  std::string model;
  /// Score floor the detections were materialized under (0 = raw output).
  double threshold = 0.0;

  bool operator==(const SemanticKey& other) const;
  /// Deterministic map key: hex stream id, model string, threshold bits.
  std::string Serialized() const;
};

/// A half-open frame window [first, first + count).
struct FrameRange {
  int first = 0;
  int count = 0;
  int last() const { return first + count; }
  /// True when this range fully contains `other` (range subsumption: a
  /// cached [0,300) answers a [60,120) probe).
  bool Contains(const FrameRange& other) const {
    return first <= other.first && other.last() <= last();
  }
};

/// One materialized inference result: per-frame detections (unfiltered by
/// object class, so queries over different classes share one entry) plus the
/// render metadata a consumer needs to rebuild a box video without touching
/// the decoder. Immutable once published; concurrent readers share it by
/// shared_ptr, so eviction never invalidates a reader.
struct SemanticEntry {
  SemanticKey key;
  FrameRange range;
  /// Source stream geometry, so a warm consumer renders without decoding.
  int width = 0;
  int height = 0;
  double fps = 0.0;
  /// detections[i] belongs to absolute stream frame range.first + i.
  std::vector<std::vector<vision::Detection>> detections;
  /// Approximate resident size, for the byte budget.
  int64_t bytes = 0;

  /// Recomputes `bytes` from the detection payload.
  void RecomputeBytes();
};

/// Cumulative cache counters (mirrored into vr_semcache_* registry metrics).
struct SemanticCacheStats {
  int64_t hits = 0;         // Probe answered by a covering ready entry.
  int64_t misses = 0;       // Caller computed (single-flight leader).
  int64_t coalesced = 0;    // Waited on another caller's in-flight compute.
  int64_t insertions = 0;   // New entries published.
  int64_t extensions = 0;   // Inserts merged into an existing entry
                            // (incremental maintenance on the online path).
  int64_t evictions = 0;    // Entries dropped to fit the byte budget.
  int64_t persisted = 0;    // Entries written through the sharded store.
  int64_t loaded = 0;       // Entries recovered from the sharded store.
  int64_t bytes_in_use = 0;
  int64_t entries = 0;
};

struct SemanticCacheOptions {
  /// Byte budget across all entries; least-recently-used entries are
  /// evicted beyond it.
  int64_t capacity_bytes = int64_t{64} << 20;
  /// Optional persistence substrate (borrowed; must outlive the cache).
  /// When set, Persist() writes every ready entry as one store file under
  /// `store_prefix` and LoadPersisted() recovers them, so a warm semantic
  /// cache survives process restarts alongside the VSS segments.
  storage::ShardedStore* store = nullptr;
  std::string store_prefix = "semcache/";
};

/// The semantic result store: a process-shareable, byte-budgeted LRU of
/// materialized per-frame inference results with range-subsumption lookups,
/// single-flight population, merge-on-insert incremental maintenance, and
/// optional persistence through ShardedStore. Thread-safe.
///
/// Reuse model:
///  - cross-query: Q2(c) and Q7 over the same stream and model share one
///    entry (detections are cached unfiltered; consumers apply their own
///    object-class cut);
///  - cross-tenant: server tenants execute on engines that point at one
///    shared cache, so tenant B's repeated dashboard query is answered from
///    tenant A's materialization;
///  - incremental: an insert adjacent to (or overlapping) an existing entry
///    extends that entry instead of invalidating it, which is how arriving
///    GOPs on the streaming path grow a cached result.
class SemanticCache {
 public:
  explicit SemanticCache(const SemanticCacheOptions& options = {});
  ~SemanticCache();

  SemanticCache(const SemanticCache&) = delete;
  SemanticCache& operator=(const SemanticCache&) = delete;

  /// The process-wide cache engines share when EngineOptions names no
  /// instance explicitly (mirrors GopCache::Global()).
  static SemanticCache& Global();

  /// How a GetOrCompute was satisfied.
  enum class Outcome { kHit, kMiss, kCoalesced };

  /// Non-populating lookup: the most-recently-used ready entry whose range
  /// contains `range`, or null. Bumps LRU recency on a hit. Exact threshold
  /// and model match only; ranges that merely touch (`[0,60)` probed with
  /// `[60,120)`) do not match.
  std::shared_ptr<const SemanticEntry> Probe(const SemanticKey& key,
                                             FrameRange range);

  /// Side-effect-free covering lookup: no stats movement, no LRU bump. The
  /// planner uses this so explaining a plan never changes cache behaviour.
  std::shared_ptr<const SemanticEntry> Peek(const SemanticKey& key,
                                            FrameRange range) const;

  /// Computes a fresh entry for exactly (key, range). Must return an entry
  /// whose key and range equal the request.
  using ComputeFn =
      std::function<StatusOr<SemanticEntry>()>;

  /// Covering lookup with single-flight population: a hit returns the
  /// covering entry; otherwise one caller runs `compute` while concurrent
  /// requesters of the same (key, range) block on that in-flight compute
  /// instead of repeating the CNN. The computed entry is published via
  /// Insert (merging with neighbours), and the returned entry covers
  /// `range`.
  StatusOr<std::shared_ptr<const SemanticEntry>> GetOrCompute(
      const SemanticKey& key, FrameRange range, const ComputeFn& compute,
      Outcome* outcome = nullptr);

  /// Publishes an entry, coalescing with same-key neighbours: an insert
  /// whose range is adjacent to or overlaps an existing entry extends that
  /// entry in place (counted as an extension, not an insertion); an insert
  /// fully covered by an existing entry only refreshes recency. Evicts LRU
  /// entries beyond the byte budget.
  void Insert(SemanticEntry entry);

  /// Detections of `range` sliced out of a covering entry, still unfiltered.
  static std::vector<std::vector<vision::Detection>> Slice(
      const SemanticEntry& entry, FrameRange range);

  /// Writes every ready entry through the configured store (no-op Ok when no
  /// store is configured). Idempotent: entry files are keyed by content.
  Status Persist();

  /// Loads every persisted entry under the configured prefix back into the
  /// cache (no-op Ok when no store is configured).
  Status LoadPersisted();

  /// Every ready entry, most-recently-used first, as shared immutable
  /// snapshots. This is the export side of cache shipping: the distributed
  /// coordinator serialises the snapshot over the wire (kCacheImport) to
  /// pre-seed worker caches or warm a respawned replacement. Does not move
  /// stats or LRU recency.
  std::vector<std::shared_ptr<const SemanticEntry>> Snapshot() const;

  /// Drops every ready entry (in-flight computes complete uncached).
  void Clear();

  void set_capacity_bytes(int64_t bytes);
  int64_t capacity_bytes() const;

  SemanticCacheStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Canonical model fingerprint for cache keying: every DetectorOptions field
/// that changes the produced detections, a variant tag distinguishing
/// architecturally different consumers of the same options (e.g. the
/// cascade's two-model stack vs. a single detector), and an explicit
/// version. Bumping `version` invalidates all previously materialized
/// results for the model, which is the upgrade story: redeploying a model
/// must never serve the old model's cached outputs.
std::string ModelFingerprint(const vision::DetectorOptions& options,
                             const std::string& variant, int version = 1);

}  // namespace visualroad::queries

#endif  // VISUALROAD_QUERIES_SEMANTIC_CACHE_H_
