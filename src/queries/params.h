#ifndef VISUALROAD_QUERIES_PARAMS_H_
#define VISUALROAD_QUERIES_PARAMS_H_

#include <array>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/random.h"
#include "common/status.h"
#include "simulation/generator.h"

namespace visualroad::queries {

/// The Visual Road query suite (Tables 5-8).
enum class QueryId {
  kQ1 = 0,   // Select: spatio-temporal crop.
  kQ2a,      // Transform: grayscale.
  kQ2b,      // Transform: Gaussian blur.
  kQ2c,      // Transform: object boxes (YOLO).
  kQ2d,      // Transform: background masking.
  kQ3,       // Subquery: tiled re-encode.
  kQ4,       // Upsample (bilinear).
  kQ5,       // Downsample.
  kQ6a,      // Union: bounding boxes.
  kQ6b,      // Union: captions.
  kQ7,       // Composite: object detection.
  kQ8,       // Composite: vehicle tracking.
  kQ9,       // VR: panoramic stitching.
  kQ10,      // VR: tile-based streaming.
};

inline constexpr int kQueryCount = 14;

/// All queries in benchmark submission order (Q1 first).
const std::array<QueryId, kQueryCount>& AllQueries();

/// "Q1", "Q2(a)", ...
const char* QueryName(QueryId id);

/// True for Q1-Q6 (microbenchmarks), false for Q7-Q10 (composite/VR).
bool IsMicrobenchmark(QueryId id);

/// How the VCD validates this query's results (Section 3.2): most
/// microbenchmarks by frame PSNR, Q2(c)/Q2(d) semantically.
enum class ValidationKind {
  kFrame,
  kSemantic,
  kNone,  // Open-ended composites validated by their constituent parts.
};
ValidationKind ValidationFor(QueryId id);

/// One instantiated query with every template parameter bound (Table 3).
/// The struct is deliberately "fat": each query reads only its fields.
struct QueryInstance {
  QueryId id = QueryId::kQ1;
  /// Index into the dataset's traffic assets (Q9/Q10 use pano_group instead).
  int video_index = 0;

  // Q1: crop rectangle and temporal range (seconds).
  RectI q1_rect;
  double q1_t1 = 0.0;
  double q1_t2 = 0.0;

  // Q2(b): Gaussian kernel size d (odd, from [3, 20] rounded up to odd).
  int q2b_d = 5;

  // Q2(c)/Q7: object class o.
  sim::ObjectClass object_class = sim::ObjectClass::kVehicle;

  // Q2(d): mean-filter window m in [2, 60] and threshold epsilon in (0, 1).
  int q2d_m = 10;
  double q2d_epsilon = 0.2;

  // Q3: tile sizes (Rx/2^n, Ry/2^n) and per-tile bitrates {2^n, n in [16,22]}.
  int q3_dx = 0;
  int q3_dy = 0;
  std::vector<int64_t> q3_bitrates;

  // Q4/Q5: scale factors alpha, beta in {2^n}.
  int q45_alpha = 2;
  int q45_beta = 2;

  // Q8: queried license plate.
  std::string q8_plate;

  // Q9/Q10: panoramic rig index.
  int pano_group = 0;

  // Q10: 3x3 tile bitrates (b_h or b_l per tile) and client resolution.
  std::array<int64_t, 9> q10_bitrates{};
  int q10_client_width = 0;
  int q10_client_height = 0;
};

/// Sampler limits. Table 3's Q4/Q5 domain reaches alpha = 2^5; at full paper
/// resolutions that is exercised as-is, but a 32x upsample of even a scaled
/// frame is enormous, so benches cap the exponent (recorded in
/// EXPERIMENTS.md). The cap is a parameter, not a hard-coded truncation.
struct SamplerOptions {
  int max_upsample_exponent = 5;    // n in [1, max] for Q4.
  int max_downsample_exponent = 5;  // n in [1, max] for Q5.
};

/// Uniformly samples one instance of query `id` against `dataset` per the
/// Table 3 domains. The VCD (not the VDBMS) performs this sampling.
StatusOr<QueryInstance> SampleQueryInstance(QueryId id, const sim::Dataset& dataset,
                                            Pcg32& rng,
                                            const SamplerOptions& options = {});

}  // namespace visualroad::queries

#endif  // VISUALROAD_QUERIES_PARAMS_H_
