#include "queries/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace visualroad::queries {

void SelectivityTracker::Record(const std::string& stage, int64_t attempts,
                                int64_t resolved, double seconds) {
  if (attempts <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  StageStats& stats = stages_[stage];
  stats.attempts += attempts;
  stats.resolved += resolved;
  stats.seconds += seconds;
}

SelectivityTracker::StageStats SelectivityTracker::Get(
    const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stages_.find(stage);
  return it == stages_.end() ? StageStats{} : it->second;
}

void SelectivityTracker::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
}

namespace {

/// Temporal pushdown for Q1: the same clamp every engine applies, computed
/// once here so planner and executor can never disagree about the window.
void ApplyTemporalPushdown(const QueryInstance& instance, const StreamMeta& meta,
                           QueryPlan& plan) {
  if (meta.frame_count <= 0 || meta.fps <= 0.0) return;
  int first = std::clamp(static_cast<int>(instance.q1_t1 * meta.fps), 0,
                         meta.frame_count - 1);
  int last = std::clamp(static_cast<int>(std::ceil(instance.q1_t2 * meta.fps)),
                        first + 1, meta.frame_count);
  plan.first_frame = first;
  plan.frame_count = last - first;
}

/// Fills plan.stages from the engine's static stage list, the tracker's
/// measurements, and the cascade-ordering rule: prefilters (every stage but
/// the last) are ordered by measured cost per resolved frame — the classic
/// cascade ordering — and a prefilter whose measured selectivity cannot pay
/// for itself is disabled outright. Unmeasured stages keep their static
/// position and stay enabled (the planner only acts on evidence).
void PlanStages(const PlanContext& context, QueryPlan& plan) {
  if (context.stages.empty()) return;
  std::vector<PlanStage> prefilters;
  for (size_t i = 0; i + 1 < context.stages.size(); ++i) {
    PlanStage stage;
    stage.name = context.stages[i];
    if (context.tracker != nullptr) {
      SelectivityTracker::StageStats stats = context.tracker->Get(stage.name);
      if (stats.Measured() && stats.attempts >= kMinMeasuredAttempts) {
        stage.measured = true;
        stage.selectivity = stats.Selectivity();
        stage.cost_per_attempt_us = stats.CostPerAttemptUs();
        stage.enabled = stage.selectivity >= kMinUsefulSelectivity;
      }
    }
    prefilters.push_back(std::move(stage));
  }
  // Cost-ordered cascade: cheaper-per-resolved-frame prefilters run first.
  // stable_sort keeps the static order for ties and unmeasured stages.
  std::stable_sort(prefilters.begin(), prefilters.end(),
                   [](const PlanStage& a, const PlanStage& b) {
                     if (!a.measured || !b.measured) return false;
                     double a_rate = a.selectivity > 0.0
                                         ? a.cost_per_attempt_us / a.selectivity
                                         : std::numeric_limits<double>::infinity();
                     double b_rate = b.selectivity > 0.0
                                         ? b.cost_per_attempt_us / b.selectivity
                                         : std::numeric_limits<double>::infinity();
                     return a_rate < b_rate;
                   });
  plan.stages = std::move(prefilters);
  PlanStage anchor;
  anchor.name = context.stages.back();
  anchor.enabled = true;
  if (context.tracker != nullptr) {
    SelectivityTracker::StageStats stats = context.tracker->Get(anchor.name);
    if (stats.Measured()) {
      anchor.measured = true;
      anchor.selectivity = stats.Selectivity();
      anchor.cost_per_attempt_us = stats.CostPerAttemptUs();
    }
  }
  plan.stages.push_back(std::move(anchor));
}

}  // namespace

QueryPlan PlanQuery(const QueryInstance& instance, const PlanContext& context) {
  QueryPlan plan;
  plan.id = instance.id;
  plan.total_frames = context.meta.frame_count;
  plan.first_frame = 0;
  plan.frame_count = context.meta.frame_count;

  switch (instance.id) {
    case QueryId::kQ1:
      if (context.temporal_pushdown) {
        ApplyTemporalPushdown(instance, context.meta, plan);
      }
      plan.roi = instance.q1_rect;
      break;
    case QueryId::kQ2c:
    case QueryId::kQ7: {
      plan.semcache_enabled = context.cache != nullptr;
      if (plan.semcache_enabled) {
        std::shared_ptr<const SemanticEntry> covering = context.cache->Peek(
            context.key, FrameRange{0, context.meta.frame_count});
        plan.semcache_warm = covering != nullptr;
      }
      if (plan.semcache_warm) {
        // The inference result is already materialized. Q2(c)'s output is a
        // pure function of the detections, so no input frame is fetched or
        // decoded at all; Q7 still decodes for its pixel-level union/mask.
        if (instance.id == QueryId::kQ2c) plan.frame_count = 0;
        PlanStage stage;
        stage.name = "semcache";
        stage.enabled = true;
        plan.stages.push_back(std::move(stage));
      } else {
        PlanStages(context, plan);
      }
      break;
    }
    default:
      PlanStages(context, plan);
      break;
  }
  return plan;
}

std::string ExplainPlan(const QueryPlan& plan) {
  char buffer[160];
  std::string out = QueryName(plan.id);
  std::snprintf(buffer, sizeof(buffer), " frames=[%d,%d)/%d", plan.first_frame,
                plan.first_frame + plan.frame_count, plan.total_frames);
  out += buffer;
  if (!plan.roi.Empty()) {
    std::snprintf(buffer, sizeof(buffer), " roi=[%d,%d,%d,%d]", plan.roi.x0,
                  plan.roi.y0, plan.roi.x1, plan.roi.y1);
    out += buffer;
  }
  if (plan.semcache_enabled) {
    out += plan.semcache_warm ? " semcache=warm" : " semcache=cold";
    if (plan.semcache_warm && plan.frame_count == 0) out += " decode=skipped";
  }
  if (!plan.stages.empty()) {
    out += " stages=[";
    bool first = true;
    std::string disabled;
    for (const PlanStage& stage : plan.stages) {
      if (!stage.enabled) {
        if (!disabled.empty()) disabled += ' ';
        std::snprintf(buffer, sizeof(buffer), "%s(sel=%.3f)",
                      stage.name.c_str(), stage.selectivity);
        disabled += buffer;
        continue;
      }
      if (!first) out += ' ';
      first = false;
      out += stage.name;
      if (stage.measured) {
        std::snprintf(buffer, sizeof(buffer), "(sel=%.3f,%.1fus)",
                      stage.selectivity, stage.cost_per_attempt_us);
        out += buffer;
      }
    }
    out += ']';
    if (!disabled.empty()) out += " disabled=[" + disabled + ']';
  }
  return out;
}

}  // namespace visualroad::queries
