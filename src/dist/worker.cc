#include "dist/worker.h"

#include <signal.h>
#include <string.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "common/metrics.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "queries/semantic_cache.h"
#include "storage/sharded_store.h"
#include "storage/vss.h"

#ifndef VR_WORKER_BINARY_DEFAULT
#define VR_WORKER_BINARY_DEFAULT ""
#endif

namespace visualroad::dist {

StatusOr<std::unique_ptr<systems::Vdbms>> MakeEngineByName(
    const std::string& name, const systems::EngineOptions& options) {
  if (name == "BatchEngine" || name == "batch") {
    return systems::MakeBatchEngine(options);
  }
  if (name == "PipelineEngine" || name == "pipeline") {
    return systems::MakePipelineEngine(options);
  }
  if (name == "CascadeEngine" || name == "cascade") {
    return systems::MakeCascadeEngine(options);
  }
  return Status::InvalidArgument("unknown engine '" + name +
                                 "' (batch|pipeline|cascade)");
}

std::string DefaultWorkerBinary() {
  const char* env = std::getenv("VR_WORKER_BINARY");
  if (env != nullptr && env[0] != '\0') return env;
  return VR_WORKER_BINARY_DEFAULT;
}

namespace {

struct WorkerMetrics {
  metrics::Counter& stagings;
  metrics::Counter& regenerations;

  static WorkerMetrics& Get() {
    static WorkerMetrics* instruments = [] {
      metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
      return new WorkerMetrics{
          registry.GetCounter(
              "vr_dist_dataset_stagings_total",
              "Worker setups that attached to a staged shared store instead "
              "of regenerating the dataset"),
          registry.GetCounter(
              "vr_dist_dataset_regenerations_total",
              "Worker setups that regenerated the dataset from configuration "
              "(no store root shipped)"),
      };
    }();
    return *instruments;
  }
};

/// The worker's per-process execution state, built at Setup time. The store
/// and VSS handle (staged mode only) are declared before the caches and
/// engine that borrow them, so destruction unwinds borrowers first.
struct WorkerState {
  sim::Dataset dataset;
  std::unique_ptr<storage::ShardedStore> store;
  std::unique_ptr<storage::VideoStorageService> vss;
  std::unique_ptr<queries::SemanticCache> semantic_cache;
  std::unique_ptr<systems::Vdbms> engine;
  int64_t instances_executed = 0;
};

StatusOr<std::vector<uint8_t>> HandleSetup(const WorkerServerOptions& options,
                                           const std::vector<uint8_t>& payload,
                                           std::unique_ptr<WorkerState>& state) {
  VR_ASSIGN_OR_RETURN(WorkerSetup setup, DecodeWorkerSetup(payload));
  auto next = std::make_unique<WorkerState>();
  systems::EngineOptions engine_options = setup.engine_options;
  if (!setup.store_root.empty()) {
    // Storage staging: attach to the coordinator's store and read the corpus
    // back instead of regenerating pixels. Strictly read-only — store
    // manifests are per-process in-memory state, so a worker writing through
    // its own handle would race the coordinator's view of the same root.
    TRACE_SPAN("dist:stage");
    if (!options.dataset_loader) {
      return Status::FailedPrecondition(
          "staged setup but worker has no dataset loader");
    }
    storage::StoreOptions store_options;
    store_options.root = setup.store_root;
    store_options.num_nodes = setup.store_nodes;
    store_options.replication = setup.store_replication;
    store_options.block_size = setup.store_block_size;
    store_options.metrics_label = "worker";
    VR_ASSIGN_OR_RETURN(storage::ShardedStore store,
                        storage::ShardedStore::Open(store_options));
    next->store = std::make_unique<storage::ShardedStore>(std::move(store));
    VR_ASSIGN_OR_RETURN(next->dataset, options.dataset_loader(*next->store));
    if (setup.attach_vss) {
      storage::VssOptions vss_options;
      vss_options.store = next->store.get();
      // 0 disables persisting transcode results: reads never write back.
      vss_options.variant_cache_bytes = 0;
      VR_ASSIGN_OR_RETURN(next->vss,
                          storage::VideoStorageService::Open(vss_options));
      engine_options.vss = next->vss.get();
    }
    WorkerMetrics::Get().stagings.Increment();
  } else {
    sim::GeneratorOptions generator_options;
    generator_options.codec = setup.codec;
    VR_ASSIGN_OR_RETURN(
        next->dataset,
        options.dataset_factory(setup.config, generator_options));
    WorkerMetrics::Get().regenerations.Increment();
  }
  if (setup.semantic_cache) {
    // A worker-local semantic result store: cross-instance reuse within this
    // worker, byte-identical results by the cache's contract.
    next->semantic_cache = std::make_unique<queries::SemanticCache>(
        queries::SemanticCacheOptions{});
    engine_options.semantic_cache = next->semantic_cache.get();
  }
  VR_ASSIGN_OR_RETURN(next->engine,
                      MakeEngineByName(setup.engine, engine_options));
  state = std::move(next);
  return std::vector<uint8_t>{};
}

StatusOr<std::vector<uint8_t>> HandleExecuteRange(
    const std::vector<uint8_t>& payload, WorkerState& state) {
  VR_ASSIGN_OR_RETURN(ExecuteRangeRequest request,
                      DecodeExecuteRequest(payload));
  std::vector<InstanceResult> results;
  results.reserve(request.items.size());
  for (const RangeItem& item : request.items) {
    InstanceResult result;
    result.index = item.index;
    Stopwatch stopwatch;
    StatusOr<systems::QueryOutput> output =
        state.engine->Execute(item.instance, state.dataset, request.mode,
                              request.output_dir, &result.stats);
    result.exec_seconds = stopwatch.ElapsedSeconds();
    ++state.instances_executed;
    if (output.ok()) {
      result.outcome = InstanceResult::kSucceeded;
      result.output = std::move(output).value();
    } else if (output.status().code() == StatusCode::kUnimplemented) {
      result.outcome = InstanceResult::kUnsupported;
    } else {
      result.outcome = InstanceResult::kFailed;
      result.resource_exhausted =
          output.status().code() == StatusCode::kResourceExhausted;
      result.error = output.status().ToString();
    }
    results.push_back(std::move(result));
  }
  return EncodeExecuteResponse(results);
}

std::vector<uint8_t> HelloResponse() {
  ByteWriter writer;
  writer.U8(kRpcVersion);
  writer.U64(static_cast<uint64_t>(::getpid()));
  return writer.Take();
}

Status ValidateHello(const std::vector<uint8_t>& payload) {
  ByteCursor cursor(payload);
  uint32_t magic = cursor.U32();
  uint8_t version = cursor.U8();
  if (!cursor.ok() || magic != kRpcMagic) {
    return Status::DataLoss("malformed hello request");
  }
  if (version != kRpcVersion) {
    return Status::FailedPrecondition("rpc version mismatch: client speaks v" +
                                      std::to_string(version));
  }
  return Status::Ok();
}

/// Serves one accepted connection until the peer disconnects or asks for
/// shutdown. Returns true when the server should exit its accept loop.
bool ServeConnection(const WorkerServerOptions& options,
                     RpcConnection connection,
                     std::unique_ptr<WorkerState>& state) {
  for (;;) {
    StatusOr<Frame> received = connection.RecvFrame(std::chrono::milliseconds(0));
    if (!received.ok()) {
      // EOF or a corrupt stream; drop the connection. With
      // exit_on_disconnect the coordinator is gone, so exit entirely.
      return options.exit_on_disconnect;
    }
    Frame& request = *received;
    Frame response;
    response.correlation_id = request.correlation_id;
    response.method = request.method;

    // Deadline propagation: a request whose deadline has already passed is
    // refused without executing — the coordinator has re-dispatched it.
    if (request.deadline_micros != 0 && NowMicros() > request.deadline_micros) {
      internal::CountDeadlineExpiration();
      response.type = FrameType::kResponseError;
      response.payload = EncodeStatusPayload(
          Status::FailedPrecondition("rpc deadline expired before execution"));
      if (!connection.SendFrame(response).ok()) {
        return options.exit_on_disconnect;
      }
      continue;
    }

    StatusOr<std::vector<uint8_t>> result = [&]() ->
        StatusOr<std::vector<uint8_t>> {
      switch (request.method) {
        case MethodId::kHello: {
          VR_RETURN_IF_ERROR(ValidateHello(request.payload));
          return HelloResponse();
        }
        case MethodId::kSetup:
          return HandleSetup(options, request.payload, state);
        case MethodId::kExecuteRange: {
          if (state == nullptr) {
            return Status::FailedPrecondition(
                "execute-range before setup: worker has no engine");
          }
          return HandleExecuteRange(request.payload, *state);
        }
        case MethodId::kHealth:
          return HelloResponse();
        case MethodId::kStats: {
          WorkerStats stats;
          if (state != nullptr) {
            stats.engine = state->engine->stats();
            stats.instances_executed = state->instances_executed;
          }
          return EncodeWorkerStats(stats);
        }
        case MethodId::kCacheExport: {
          // A worker without a cache (not yet set up, or caching disabled)
          // exports the empty set rather than erroring: the coordinator
          // treats any live worker as a potential warm-start donor.
          if (state == nullptr || state->semantic_cache == nullptr) {
            return EncodeCacheEntries({});
          }
          return EncodeCacheEntries(state->semantic_cache->Snapshot());
        }
        case MethodId::kCacheImport: {
          VR_ASSIGN_OR_RETURN(std::vector<queries::SemanticEntry> entries,
                              DecodeCacheEntries(request.payload));
          // Dropped silently when caching is off — pre-seeding is an
          // optimisation, never a correctness requirement.
          if (state != nullptr && state->semantic_cache != nullptr) {
            for (queries::SemanticEntry& entry : entries) {
              state->semantic_cache->Insert(std::move(entry));
            }
          }
          return std::vector<uint8_t>{};
        }
        case MethodId::kShutdown:
          return std::vector<uint8_t>{};
      }
      return Status::InvalidArgument("unknown rpc method");
    }();

    if (result.ok()) {
      response.type = FrameType::kResponseOk;
      response.payload = std::move(result).value();
    } else {
      response.type = FrameType::kResponseError;
      response.payload = EncodeStatusPayload(result.status());
    }
    if (!connection.SendFrame(response).ok()) {
      return options.exit_on_disconnect;
    }
    if (request.method == MethodId::kShutdown) return true;
  }
}

}  // namespace

Status RunWorkerServer(const WorkerServerOptions& options) {
  if (!options.dataset_factory) {
    return Status::InvalidArgument("worker server needs a dataset factory");
  }
  VR_ASSIGN_OR_RETURN(RpcListener listener,
                      RpcListener::ListenUnix(options.socket_path));
  std::unique_ptr<WorkerState> state;
  for (;;) {
    VR_ASSIGN_OR_RETURN(RpcConnection connection,
                        listener.Accept(std::chrono::milliseconds(0)));
    // State survives across connections: a coordinator that reconnects after
    // a dropped link finds the dataset and engine already built.
    if (ServeConnection(options, std::move(connection), state)) break;
  }
  return Status::Ok();
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(other.pid_), socket_path_(std::move(other.socket_path_)) {
  other.pid_ = -1;
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    pid_ = other.pid_;
    socket_path_ = std::move(other.socket_path_);
    other.pid_ = -1;
  }
  return *this;
}

WorkerProcess::~WorkerProcess() { Kill(); }

StatusOr<WorkerProcess> WorkerProcess::Spawn(const std::string& binary,
                                             const std::string& socket_path) {
  if (binary.empty()) {
    return Status::InvalidArgument(
        "no worker binary: set VR_WORKER_BINARY or build the vr_worker target");
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + ::strerror(errno));
  }
  if (pid == 0) {
    // Child: die with the parent even if the parent is SIGKILLed (a ctest
    // timeout kills the test runner without unwinding destructors).
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) _exit(125);  // Parent already gone before prctl.
    ::execl(binary.c_str(), binary.c_str(), "--socket", socket_path.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed.
  }
  WorkerProcess process;
  process.pid_ = pid;
  process.socket_path_ = socket_path;
  return process;
}

void WorkerProcess::Kill() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  // A SIGKILLed worker never removes its socket file; do it for it so a
  // killed fleet leaves nothing behind in the socket directory.
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
}

bool WorkerProcess::Alive() {
  if (pid_ <= 0) return false;
  int status = 0;
  pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
  if (reaped == pid_) {
    pid_ = -1;  // Exited; reaped here.
    return false;
  }
  return reaped == 0;
}

}  // namespace visualroad::dist
