#ifndef VISUALROAD_DIST_RPC_H_
#define VISUALROAD_DIST_RPC_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace visualroad::dist {

/// Frame magic ("VRPC" little-endian) and the protocol version carried in
/// every frame header. A version bump is a handshake-time rejection, not a
/// silent parse divergence.
inline constexpr uint32_t kRpcMagic = 0x43505256;  // 'V''R''P''C' in LE bytes.
inline constexpr uint8_t kRpcVersion = 1;

/// Hard ceiling on a frame payload. A header announcing more than this is
/// rejected before any payload allocation — the defense against a corrupt or
/// hostile length field.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// RPC methods the worker serves.
enum class MethodId : uint8_t {
  kHello = 0,         // Handshake: magic + version -> version + pid.
  kSetup = 1,         // Ship WorkerSetup; worker builds dataset + engine.
  kExecuteRange = 2,  // Execute a sub-range of query instances.
  kHealth = 3,        // Liveness probe -> pid.
  kStats = 4,         // Cumulative engine stats.
  kShutdown = 5,      // Graceful exit; worker acks then leaves its loop.
  kCacheExport = 6,   // Snapshot the worker's semantic-cache entries.
  kCacheImport = 7,   // Seed the worker's semantic cache with shipped entries.
};

/// Frame roles. Error responses carry a serialized Status as payload.
enum class FrameType : uint8_t {
  kRequest = 0,
  kResponseOk = 1,
  kResponseError = 2,
};

/// One decoded frame. On the wire a frame is:
///   u32 magic | u32 length | u8 version | u8 type | u8 method | u8 reserved
///   | u64 correlation_id | u64 deadline_micros | u32 payload_size
///   | payload bytes | u32 crc32
/// where `length` counts everything after itself and the CRC covers
/// [version .. payload]. All integers little-endian.
struct Frame {
  FrameType type = FrameType::kRequest;
  MethodId method = MethodId::kHello;
  /// Correlates a response to its request; a client discards frames whose
  /// id does not match the call in flight (stale responses after a timeout).
  uint64_t correlation_id = 0;
  /// Absolute deadline in steady-clock microseconds (comparable across
  /// processes on one machine); 0 = no deadline. A server receiving an
  /// already-expired request rejects it without executing.
  uint64_t deadline_micros = 0;
  std::vector<uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected) over `size` bytes.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Steady-clock now in microseconds (the deadline clock).
uint64_t NowMicros();

/// Serialises a frame to wire bytes (magic through CRC).
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Serialised Status for error-response payloads.
std::vector<uint8_t> EncodeStatusPayload(const Status& status);
Status DecodeStatusPayload(const std::vector<uint8_t>& payload);

/// A connected stream socket carrying framed RPC messages. Movable, not
/// copyable; closes its descriptor on destruction. Not thread-safe — one
/// owner drives a connection at a time (the coordinator serialises calls per
/// worker link).
class RpcConnection {
 public:
  RpcConnection() = default;
  /// Adopts an already-connected descriptor (accept side, socketpair tests).
  explicit RpcConnection(int fd) : fd_(fd) {}
  RpcConnection(RpcConnection&& other) noexcept;
  RpcConnection& operator=(RpcConnection&& other) noexcept;
  ~RpcConnection();

  /// Connects to a Unix-domain socket, retrying until `timeout` elapses (the
  /// listener may not be bound yet when a freshly spawned worker is slow).
  static StatusOr<RpcConnection> ConnectUnix(const std::string& path,
                                             std::chrono::milliseconds timeout);

  /// Writes one frame. Partial sends are continued; a peer that vanished
  /// surfaces as IoError (SIGPIPE suppressed).
  Status SendFrame(const Frame& frame);

  /// Reads one frame. `timeout` <= 0 blocks indefinitely. Errors:
  ///  - IoError "rpc receive timeout" when the deadline passes mid-frame;
  ///  - DataLoss on EOF mid-frame, bad magic, or checksum mismatch;
  ///  - InvalidArgument on an oversized payload announcement (rejected
  ///    before allocation) or an unknown protocol version.
  /// A timeout is RESUMABLE: bytes of the interrupted frame stay buffered
  /// and the next RecvFrame picks up where this one stopped, so abandoning
  /// a call on its deadline never desynchronises the stream. The straggler
  /// path depends on this — a late oversize response is skipped whole by
  /// correlation id, not torn mid-frame. The DataLoss / InvalidArgument
  /// errors do leave the stream unsynchronised; callers close and reconnect.
  StatusOr<Frame> RecvFrame(std::chrono::milliseconds timeout);

  bool open() const { return fd_ >= 0; }
  void Close();

 private:
  /// Appends socket bytes to `partial_` until it holds at least `target`
  /// bytes of the in-progress frame. A deadline expiry returns IoError with
  /// `partial_` intact (the resumability above); EOF and socket errors are
  /// terminal.
  Status FillBuffer(size_t target,
                    std::chrono::steady_clock::time_point deadline,
                    bool has_deadline);

  int fd_ = -1;
  /// Bytes of the inbound frame currently being assembled (prefix included).
  /// Non-empty only when a RecvFrame timed out mid-frame.
  std::vector<uint8_t> partial_;
};

/// A bound, listening Unix-domain socket. Unlinks any stale socket file on
/// bind and removes the file again on close, so a restarted worker can
/// re-listen on the same pid-qualified path.
class RpcListener {
 public:
  RpcListener() = default;
  RpcListener(RpcListener&& other) noexcept;
  RpcListener& operator=(RpcListener&& other) noexcept;
  ~RpcListener();

  static StatusOr<RpcListener> ListenUnix(const std::string& path);

  /// Accepts one connection; `timeout` <= 0 blocks indefinitely.
  StatusOr<RpcConnection> Accept(std::chrono::milliseconds timeout);

  const std::string& path() const { return path_; }
  bool open() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Request/response client over one connection: assigns correlation ids,
/// propagates deadlines, discards stale responses, and decodes error
/// payloads back into Status.
class RpcClient {
 public:
  explicit RpcClient(RpcConnection connection)
      : connection_(std::move(connection)) {}

  /// Hello exchange: sends magic + version, expects the worker's version and
  /// pid back. A version mismatch is FailedPrecondition.
  Status Handshake(std::chrono::milliseconds timeout);

  /// One call: send request, await the matching response. `timeout` bounds
  /// the wait for the response (the straggler detector) and is also shipped
  /// as the frame deadline so the worker can refuse expired work.
  StatusOr<std::vector<uint8_t>> Call(MethodId method,
                                      const std::vector<uint8_t>& payload,
                                      std::chrono::milliseconds timeout);

  /// Worker pid learned at handshake (0 before).
  int64_t worker_pid() const { return worker_pid_; }

  bool open() const { return connection_.open(); }
  void Close() { connection_.Close(); }
  RpcConnection& connection() { return connection_; }

 private:
  RpcConnection connection_;
  uint64_t next_correlation_ = 1;
  int64_t worker_pid_ = 0;
};

namespace internal {
/// Bumps vr_rpc_deadline_expirations_total; the worker serve loop calls this
/// when it refuses an already-expired request.
void CountDeadlineExpiration();

/// Milliseconds to hand poll() while waiting for `deadline`: 0 once the
/// deadline has passed, otherwise at least 1 — poll() treats a 0 budget as an
/// immediate return, so rounding a sub-millisecond remainder down to 0 would
/// turn the tail of every wait into a busy loop.
int PollBudgetMs(std::chrono::steady_clock::time_point deadline);
}  // namespace internal

}  // namespace visualroad::dist

#endif  // VISUALROAD_DIST_RPC_H_
