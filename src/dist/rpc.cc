#include "dist/rpc.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <thread>

#include "common/metrics.h"
#include "common/serialize.h"

namespace visualroad::dist {
namespace {

/// Header bytes after the length field: version, type, method, reserved,
/// correlation, deadline, payload_size.
constexpr size_t kHeaderSize = 4 + 8 + 8 + 4;

struct RpcMetrics {
  metrics::Counter& frames_sent;
  metrics::Counter& frames_received;
  metrics::Counter& bytes_sent;
  metrics::Counter& bytes_received;
  metrics::Counter& checksum_failures;
  metrics::Counter& frame_rejects;
  metrics::Counter& deadline_expirations;
  metrics::Counter& calls;

  static RpcMetrics& Get() {
    static RpcMetrics* instruments = [] {
      metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
      return new RpcMetrics{
          registry.GetCounter("vr_rpc_frames_sent_total",
                              "RPC frames written to a peer"),
          registry.GetCounter("vr_rpc_frames_received_total",
                              "RPC frames successfully read and verified"),
          registry.GetCounter("vr_rpc_bytes_sent_total",
                              "Wire bytes written across all RPC connections"),
          registry.GetCounter("vr_rpc_bytes_received_total",
                              "Wire bytes read across all RPC connections"),
          registry.GetCounter("vr_rpc_checksum_failures_total",
                              "Received frames dropped for a CRC mismatch"),
          registry.GetCounter(
              "vr_rpc_frame_rejects_total",
              "Received frames rejected before payload read (bad magic, "
              "unknown version, oversized length)"),
          registry.GetCounter(
              "vr_rpc_deadline_expirations_total",
              "Requests refused because their deadline had already passed"),
          registry.GetCounter("vr_rpc_calls_total",
                              "Request/response round trips initiated"),
      };
    }();
    return *instruments;
  }
};

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256>* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      (*t)[i] = c;
    }
    return t;
  }();
  return *table;
}

int PollBudget(std::chrono::steady_clock::time_point deadline) {
  return internal::PollBudgetMs(deadline);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  ByteWriter body;
  body.U8(kRpcVersion);
  body.U8(static_cast<uint8_t>(frame.type));
  body.U8(static_cast<uint8_t>(frame.method));
  body.U8(0);  // Reserved.
  body.U64(frame.correlation_id);
  body.U64(frame.deadline_micros);
  body.U32(static_cast<uint32_t>(frame.payload.size()));
  const std::vector<uint8_t>& header = body.bytes();

  ByteWriter out;
  out.U32(kRpcMagic);
  out.U32(static_cast<uint32_t>(header.size() + frame.payload.size() + 4));
  std::vector<uint8_t> bytes = out.Take();
  bytes.insert(bytes.end(), header.begin(), header.end());
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());
  uint32_t crc = Crc32(bytes.data() + 8, bytes.size() - 8);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return bytes;
}

std::vector<uint8_t> EncodeStatusPayload(const Status& status) {
  ByteWriter writer;
  writer.U8(static_cast<uint8_t>(status.code()));
  writer.Str(status.message());
  return writer.Take();
}

Status DecodeStatusPayload(const std::vector<uint8_t>& payload) {
  ByteCursor cursor(payload);
  uint8_t code = cursor.U8();
  std::string message = cursor.Str();
  if (!cursor.ok()) {
    return Status::DataLoss("malformed rpc error payload");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

RpcConnection::RpcConnection(RpcConnection&& other) noexcept
    : fd_(other.fd_), partial_(std::move(other.partial_)) {
  other.fd_ = -1;
  other.partial_.clear();
}

RpcConnection& RpcConnection::operator=(RpcConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    partial_ = std::move(other.partial_);
    other.fd_ = -1;
    other.partial_.clear();
  }
  return *this;
}

RpcConnection::~RpcConnection() { Close(); }

void RpcConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  partial_.clear();
}

StatusOr<RpcConnection> RpcConnection::ConnectUnix(
    const std::string& path, std::chrono::milliseconds timeout) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  ::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError(std::string("socket: ") + ::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return RpcConnection(fd);
    }
    int err = errno;
    ::close(fd);
    // A freshly spawned worker may not have bound yet; retry until the
    // budget runs out for the transient cases.
    if ((err == ENOENT || err == ECONNREFUSED) &&
        std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    return Status::IoError("connect " + path + ": " + ::strerror(err));
  }
}

Status RpcConnection::SendFrame(const Frame& frame) {
  if (fd_ < 0) return Status::IoError("rpc connection closed");
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("rpc send: ") + ::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  RpcMetrics::Get().frames_sent.Increment();
  RpcMetrics::Get().bytes_sent.Increment(static_cast<double>(bytes.size()));
  return Status::Ok();
}

Status RpcConnection::FillBuffer(size_t target,
                                 std::chrono::steady_clock::time_point deadline,
                                 bool has_deadline) {
  while (partial_.size() < target) {
    if (has_deadline) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::IoError("rpc receive timeout");
      }
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, PollBudget(deadline));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("rpc poll: ") + ::strerror(errno));
      }
      if (ready == 0) return Status::IoError("rpc receive timeout");
    }
    size_t have = partial_.size();
    partial_.resize(target);
    ssize_t n = ::recv(fd_, partial_.data() + have, target - have, 0);
    if (n <= 0) {
      partial_.resize(have);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("rpc recv: ") + ::strerror(errno));
      }
      return Status::DataLoss(have == 0 ? "rpc connection closed by peer"
                                        : "truncated rpc frame");
    }
    partial_.resize(have + static_cast<size_t>(n));
    RpcMetrics::Get().bytes_received.Increment(static_cast<double>(n));
  }
  return Status::Ok();
}

StatusOr<Frame> RpcConnection::RecvFrame(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::IoError("rpc connection closed");
  bool has_deadline = timeout.count() > 0;
  auto deadline = std::chrono::steady_clock::now() + timeout;

  // The frame assembles in partial_ so a deadline expiry at any point is
  // resumable: the next RecvFrame continues from the bytes already read
  // instead of treating the remainder of a torn frame as a fresh prefix.
  constexpr size_t kPrefixSize = 8;
  VR_RETURN_IF_ERROR(FillBuffer(kPrefixSize, deadline, has_deadline));
  ByteCursor prefix_cursor(partial_.data(), kPrefixSize);
  uint32_t magic = prefix_cursor.U32();
  uint32_t length = prefix_cursor.U32();
  if (magic != kRpcMagic) {
    RpcMetrics::Get().frame_rejects.Increment();
    partial_.clear();
    return Status::DataLoss("bad rpc frame magic");
  }
  // The announced length covers the fixed header plus payload plus CRC; an
  // oversized announcement is rejected before any allocation.
  if (length < kHeaderSize + 4 || length > kHeaderSize + kMaxFramePayload + 4) {
    RpcMetrics::Get().frame_rejects.Increment();
    partial_.clear();
    return Status::InvalidArgument("oversized or undersized rpc frame");
  }

  VR_RETURN_IF_ERROR(FillBuffer(kPrefixSize + length, deadline, has_deadline));
  std::vector<uint8_t> body(partial_.begin() + kPrefixSize, partial_.end());
  partial_.clear();

  uint32_t stored_crc = body[length - 4] |
                        (static_cast<uint32_t>(body[length - 3]) << 8) |
                        (static_cast<uint32_t>(body[length - 2]) << 16) |
                        (static_cast<uint32_t>(body[length - 1]) << 24);
  if (Crc32(body.data(), length - 4) != stored_crc) {
    RpcMetrics::Get().checksum_failures.Increment();
    return Status::DataLoss("rpc frame checksum mismatch");
  }

  ByteCursor cursor(body.data(), length - 4);
  uint8_t version = cursor.U8();
  if (version != kRpcVersion) {
    RpcMetrics::Get().frame_rejects.Increment();
    return Status::InvalidArgument("unknown rpc protocol version " +
                                   std::to_string(version));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(cursor.U8());
  frame.method = static_cast<MethodId>(cursor.U8());
  cursor.U8();  // Reserved.
  frame.correlation_id = cursor.U64();
  frame.deadline_micros = cursor.U64();
  uint32_t payload_size = cursor.U32();
  if (!cursor.ok() || payload_size != length - kHeaderSize - 4) {
    return Status::DataLoss("rpc frame header/payload size mismatch");
  }
  frame.payload.assign(body.begin() + static_cast<long>(kHeaderSize),
                       body.begin() + static_cast<long>(kHeaderSize) +
                           static_cast<long>(payload_size));
  RpcMetrics::Get().frames_received.Increment();
  return frame;
}

RpcListener::RpcListener(RpcListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

RpcListener& RpcListener::operator=(RpcListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

RpcListener::~RpcListener() { Close(); }

void RpcListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

StatusOr<RpcListener> RpcListener::ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  ::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // A stale file from a crashed predecessor.

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + ::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("bind " + path + ": " + ::strerror(err));
  }
  if (::listen(fd, 8) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError("listen " + path + ": " + ::strerror(err));
  }
  RpcListener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

StatusOr<RpcConnection> RpcListener::Accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::IoError("rpc listener closed");
  bool has_deadline = timeout.count() > 0;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (has_deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, PollBudget(deadline));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("accept poll: ") + ::strerror(errno));
      }
      if (ready == 0) return Status::IoError("accept timeout");
    }
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("accept: ") + ::strerror(errno));
    }
    return RpcConnection(fd);
  }
}

Status RpcClient::Handshake(std::chrono::milliseconds timeout) {
  ByteWriter hello;
  hello.U32(kRpcMagic);
  hello.U8(kRpcVersion);
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                      Call(MethodId::kHello, hello.Take(), timeout));
  ByteCursor cursor(response);
  uint8_t version = cursor.U8();
  uint64_t pid = cursor.U64();
  if (!cursor.ok()) return Status::DataLoss("malformed hello response");
  if (version != kRpcVersion) {
    return Status::FailedPrecondition(
        "rpc version mismatch: worker speaks v" + std::to_string(version) +
        ", coordinator speaks v" + std::to_string(kRpcVersion));
  }
  worker_pid_ = static_cast<int64_t>(pid);
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> RpcClient::Call(
    MethodId method, const std::vector<uint8_t>& payload,
    std::chrono::milliseconds timeout) {
  RpcMetrics::Get().calls.Increment();
  Frame request;
  request.type = FrameType::kRequest;
  request.method = method;
  request.correlation_id = next_correlation_++;
  if (timeout.count() > 0) {
    request.deadline_micros =
        NowMicros() + static_cast<uint64_t>(
                          std::chrono::duration_cast<std::chrono::microseconds>(
                              timeout)
                              .count());
  }
  request.payload = payload;
  VR_RETURN_IF_ERROR(connection_.SendFrame(request));

  for (;;) {
    VR_ASSIGN_OR_RETURN(Frame response, connection_.RecvFrame(timeout));
    if (response.correlation_id != request.correlation_id) {
      // A stale response from a call abandoned on timeout; skip it and keep
      // waiting for ours.
      continue;
    }
    if (response.type == FrameType::kResponseError) {
      return DecodeStatusPayload(response.payload);
    }
    if (response.type != FrameType::kResponseOk) {
      return Status::DataLoss("unexpected rpc frame type in response");
    }
    return std::move(response.payload);
  }
}

namespace internal {

void CountDeadlineExpiration() {
  RpcMetrics::Get().deadline_expirations.Increment();
}

int PollBudgetMs(std::chrono::steady_clock::time_point deadline) {
  auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return 0;
  auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  // A sub-millisecond remainder truncates to 0, which poll() treats as an
  // immediate return — round up to 1 ms so an unexpired deadline still waits.
  return static_cast<int>(std::max<int64_t>(remaining.count(), 1));
}

}  // namespace internal

}  // namespace visualroad::dist
