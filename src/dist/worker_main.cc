// vr_worker: the distributed execution worker process. Spawned by a
// Coordinator (DESIGN.md Section 15) as `vr_worker --socket PATH`; serves
// Setup/ExecuteRange/Health/Stats RPCs over the Unix-domain socket until
// the coordinator disconnects or sends Shutdown. Not intended for manual
// use, but harmless to run by hand.

#include <cstdio>
#include <cstring>
#include <string>

#include "dist/worker.h"
#include "driver/dataset_io.h"
#include "driver/datasets.h"

namespace {

int Run(int argc, char** argv) {
  using namespace visualroad;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: vr_worker --socket PATH\n");
      return 0;
    } else {
      std::fprintf(stderr, "vr_worker: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "vr_worker: --socket PATH is required\n");
    return 2;
  }

  dist::WorkerServerOptions options;
  options.socket_path = socket_path;
  // A dropped control connection means the coordinator died; exit rather
  // than linger as an orphan (belt to PR_SET_PDEATHSIG's suspenders).
  options.exit_on_disconnect = true;
  options.dataset_factory = [](const sim::CityConfig& config,
                               const sim::GeneratorOptions& generator_options) {
    return driver::PrepareDataset(config, generator_options);
  };
  // Staged setups skip regeneration entirely: the corpus is read back from
  // the shared store the coordinator saved it into.
  options.dataset_loader = [](const storage::ShardedStore& store) {
    return driver::LoadDatasetSharded(store);
  };
  Status status = dist::RunWorkerServer(options);
  if (!status.ok()) {
    std::fprintf(stderr, "vr_worker: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
