#include "dist/protocol.h"

#include "common/serialize.h"
#include "video/container/vrmp.h"

namespace visualroad::dist {
namespace {

void WriteCityConfig(ByteWriter& writer, const sim::CityConfig& config) {
  writer.I32(config.scale_factor);
  writer.I32(config.width);
  writer.I32(config.height);
  writer.F64(config.duration_seconds);
  writer.F64(config.fps);
  writer.U64(config.seed);
  writer.I32(config.traffic_cameras_per_tile);
  writer.I32(config.panoramic_cameras_per_tile);
}

sim::CityConfig ReadCityConfig(ByteCursor& cursor) {
  sim::CityConfig config;
  config.scale_factor = cursor.I32();
  config.width = cursor.I32();
  config.height = cursor.I32();
  config.duration_seconds = cursor.F64();
  config.fps = cursor.F64();
  config.seed = cursor.U64();
  config.traffic_cameras_per_tile = cursor.I32();
  config.panoramic_cameras_per_tile = cursor.I32();
  return config;
}

void WriteEncoderConfig(ByteWriter& writer,
                        const video::codec::EncoderConfig& config) {
  writer.U8(static_cast<uint8_t>(config.profile));
  writer.I32(config.gop_length);
  writer.I32(config.qp);
  writer.U64(static_cast<uint64_t>(config.target_bitrate_bps));
  writer.I32(config.search_radius);
}

video::codec::EncoderConfig ReadEncoderConfig(ByteCursor& cursor) {
  video::codec::EncoderConfig config;
  config.profile = static_cast<video::codec::Profile>(cursor.U8());
  config.gop_length = cursor.I32();
  config.qp = cursor.I32();
  config.target_bitrate_bps = static_cast<int64_t>(cursor.U64());
  config.search_radius = cursor.I32();
  return config;
}

void WriteDetectorOptions(ByteWriter& writer,
                          const vision::DetectorOptions& options) {
  writer.U64(options.seed);
  writer.F64(options.base_recall);
  writer.F64(options.false_positives_per_frame);
  writer.F64(options.box_jitter);
  writer.F64(options.min_visible_fraction);
  writer.I32(options.min_box_pixels);
  writer.I32(options.input_size);
}

vision::DetectorOptions ReadDetectorOptions(ByteCursor& cursor) {
  vision::DetectorOptions options;
  options.seed = cursor.U64();
  options.base_recall = cursor.F64();
  options.false_positives_per_frame = cursor.F64();
  options.box_jitter = cursor.F64();
  options.min_visible_fraction = cursor.F64();
  options.min_box_pixels = cursor.I32();
  options.input_size = cursor.I32();
  return options;
}

void WriteQueryInstance(ByteWriter& writer,
                        const queries::QueryInstance& instance) {
  writer.U8(static_cast<uint8_t>(instance.id));
  writer.I32(instance.video_index);
  writer.I32(instance.q1_rect.x0);
  writer.I32(instance.q1_rect.y0);
  writer.I32(instance.q1_rect.x1);
  writer.I32(instance.q1_rect.y1);
  writer.F64(instance.q1_t1);
  writer.F64(instance.q1_t2);
  writer.I32(instance.q2b_d);
  writer.U8(static_cast<uint8_t>(instance.object_class));
  writer.I32(instance.q2d_m);
  writer.F64(instance.q2d_epsilon);
  writer.I32(instance.q3_dx);
  writer.I32(instance.q3_dy);
  writer.U32(static_cast<uint32_t>(instance.q3_bitrates.size()));
  for (int64_t bitrate : instance.q3_bitrates) {
    writer.U64(static_cast<uint64_t>(bitrate));
  }
  writer.I32(instance.q45_alpha);
  writer.I32(instance.q45_beta);
  writer.Str(instance.q8_plate);
  writer.I32(instance.pano_group);
  for (int64_t bitrate : instance.q10_bitrates) {
    writer.U64(static_cast<uint64_t>(bitrate));
  }
  writer.I32(instance.q10_client_width);
  writer.I32(instance.q10_client_height);
}

queries::QueryInstance ReadQueryInstance(ByteCursor& cursor) {
  queries::QueryInstance instance;
  instance.id = static_cast<queries::QueryId>(cursor.U8());
  instance.video_index = cursor.I32();
  instance.q1_rect.x0 = cursor.I32();
  instance.q1_rect.y0 = cursor.I32();
  instance.q1_rect.x1 = cursor.I32();
  instance.q1_rect.y1 = cursor.I32();
  instance.q1_t1 = cursor.F64();
  instance.q1_t2 = cursor.F64();
  instance.q2b_d = cursor.I32();
  instance.object_class = static_cast<sim::ObjectClass>(cursor.U8());
  instance.q2d_m = cursor.I32();
  instance.q2d_epsilon = cursor.F64();
  instance.q3_dx = cursor.I32();
  instance.q3_dy = cursor.I32();
  uint32_t bitrates = cursor.U32();
  instance.q3_bitrates.clear();
  for (uint32_t i = 0; i < bitrates && cursor.ok(); ++i) {
    instance.q3_bitrates.push_back(static_cast<int64_t>(cursor.U64()));
  }
  instance.q45_alpha = cursor.I32();
  instance.q45_beta = cursor.I32();
  instance.q8_plate = cursor.Str();
  instance.pano_group = cursor.I32();
  for (size_t i = 0; i < instance.q10_bitrates.size(); ++i) {
    instance.q10_bitrates[i] = static_cast<int64_t>(cursor.U64());
  }
  instance.q10_client_width = cursor.I32();
  instance.q10_client_height = cursor.I32();
  return instance;
}

void WriteEngineStats(ByteWriter& writer, const systems::EngineStats& stats) {
  writer.U64(static_cast<uint64_t>(stats.frames_decoded));
  writer.U64(static_cast<uint64_t>(stats.frames_encoded));
  writer.U64(static_cast<uint64_t>(stats.cache_hits));
  writer.U64(static_cast<uint64_t>(stats.cache_misses));
  writer.U64(static_cast<uint64_t>(stats.chunked_redecodes));
  writer.U64(static_cast<uint64_t>(stats.cnn_frames_full));
  writer.U64(static_cast<uint64_t>(stats.cnn_frames_cheap));
  writer.U64(static_cast<uint64_t>(stats.cnn_frames_skipped));
}

systems::EngineStats ReadEngineStats(ByteCursor& cursor) {
  systems::EngineStats stats;
  stats.frames_decoded = static_cast<int64_t>(cursor.U64());
  stats.frames_encoded = static_cast<int64_t>(cursor.U64());
  stats.cache_hits = static_cast<int64_t>(cursor.U64());
  stats.cache_misses = static_cast<int64_t>(cursor.U64());
  stats.chunked_redecodes = static_cast<int64_t>(cursor.U64());
  stats.cnn_frames_full = static_cast<int64_t>(cursor.U64());
  stats.cnn_frames_cheap = static_cast<int64_t>(cursor.U64());
  stats.cnn_frames_skipped = static_cast<int64_t>(cursor.U64());
  return stats;
}

void WriteDetections(
    ByteWriter& writer,
    const std::vector<std::vector<vision::Detection>>& detections) {
  writer.U32(static_cast<uint32_t>(detections.size()));
  for (const std::vector<vision::Detection>& frame : detections) {
    writer.U32(static_cast<uint32_t>(frame.size()));
    for (const vision::Detection& detection : frame) {
      writer.U8(static_cast<uint8_t>(detection.object_class));
      writer.I32(detection.box.x0);
      writer.I32(detection.box.y0);
      writer.I32(detection.box.x1);
      writer.I32(detection.box.y1);
      writer.F64(detection.score);
      writer.I32(detection.entity_id);
    }
  }
}

std::vector<std::vector<vision::Detection>> ReadDetections(ByteCursor& cursor) {
  std::vector<std::vector<vision::Detection>> detections;
  uint32_t frames = cursor.U32();
  detections.reserve(frames);
  for (uint32_t f = 0; f < frames && cursor.ok(); ++f) {
    uint32_t count = cursor.U32();
    std::vector<vision::Detection> frame;
    frame.reserve(count);
    for (uint32_t d = 0; d < count && cursor.ok(); ++d) {
      vision::Detection detection;
      detection.object_class = static_cast<sim::ObjectClass>(cursor.U8());
      detection.box.x0 = cursor.I32();
      detection.box.y0 = cursor.I32();
      detection.box.x1 = cursor.I32();
      detection.box.y1 = cursor.I32();
      detection.score = cursor.F64();
      detection.entity_id = cursor.I32();
      frame.push_back(detection);
    }
    detections.push_back(std::move(frame));
  }
  return detections;
}

}  // namespace

std::vector<uint8_t> EncodeWorkerSetup(const WorkerSetup& setup) {
  ByteWriter writer;
  WriteCityConfig(writer, setup.config);
  WriteEncoderConfig(writer, setup.codec);
  writer.Str(setup.engine);
  const systems::EngineOptions& options = setup.engine_options;
  writer.U64(static_cast<uint64_t>(options.memory_budget_bytes));
  writer.U64(static_cast<uint64_t>(options.memory_fail_bytes));
  writer.I32(options.threads);
  writer.I32(options.output_qp);
  writer.U8(static_cast<uint8_t>(options.output_profile));
  writer.I32(options.codec_threads);
  writer.U64(static_cast<uint64_t>(options.gop_cache_bytes));
  writer.F64(options.plate_match_threshold);
  writer.I32(options.workers);
  WriteDetectorOptions(writer, setup.detector);
  writer.U8(setup.semantic_cache ? 1 : 0);
  writer.Str(setup.store_root);
  writer.I32(setup.store_nodes);
  writer.I32(setup.store_replication);
  writer.U64(static_cast<uint64_t>(setup.store_block_size));
  writer.U8(setup.attach_vss ? 1 : 0);
  return writer.Take();
}

StatusOr<WorkerSetup> DecodeWorkerSetup(const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  WorkerSetup setup;
  setup.config = ReadCityConfig(cursor);
  setup.codec = ReadEncoderConfig(cursor);
  setup.engine = cursor.Str();
  systems::EngineOptions& options = setup.engine_options;
  options.memory_budget_bytes = static_cast<int64_t>(cursor.U64());
  options.memory_fail_bytes = static_cast<int64_t>(cursor.U64());
  options.threads = cursor.I32();
  options.output_qp = cursor.I32();
  options.output_profile = static_cast<video::codec::Profile>(cursor.U8());
  options.codec_threads = cursor.I32();
  options.gop_cache_bytes = static_cast<int64_t>(cursor.U64());
  options.plate_match_threshold = cursor.F64();
  options.workers = cursor.I32();
  setup.detector = ReadDetectorOptions(cursor);
  setup.semantic_cache = cursor.U8() != 0;
  setup.store_root = cursor.Str();
  setup.store_nodes = cursor.I32();
  setup.store_replication = cursor.I32();
  setup.store_block_size = static_cast<int64_t>(cursor.U64());
  setup.attach_vss = cursor.U8() != 0;
  if (!cursor.ok()) return Status::DataLoss("malformed worker setup payload");
  options.detector = setup.detector;
  return setup;
}

std::vector<uint8_t> EncodeExecuteRequest(const ExecuteRangeRequest& request) {
  ByteWriter writer;
  writer.U8(static_cast<uint8_t>(request.mode));
  writer.Str(request.output_dir);
  writer.U32(static_cast<uint32_t>(request.items.size()));
  for (const RangeItem& item : request.items) {
    writer.I32(item.index);
    WriteQueryInstance(writer, item.instance);
  }
  return writer.Take();
}

StatusOr<ExecuteRangeRequest> DecodeExecuteRequest(
    const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  ExecuteRangeRequest request;
  request.mode = static_cast<systems::OutputMode>(cursor.U8());
  request.output_dir = cursor.Str();
  uint32_t count = cursor.U32();
  for (uint32_t i = 0; i < count && cursor.ok(); ++i) {
    RangeItem item;
    item.index = cursor.I32();
    item.instance = ReadQueryInstance(cursor);
    request.items.push_back(std::move(item));
  }
  if (!cursor.ok() || request.items.size() != count) {
    return Status::DataLoss("malformed execute-range request payload");
  }
  return request;
}

std::vector<uint8_t> EncodeExecuteResponse(
    const std::vector<InstanceResult>& results) {
  ByteWriter writer;
  writer.U32(static_cast<uint32_t>(results.size()));
  for (const InstanceResult& result : results) {
    writer.I32(result.index);
    writer.U8(result.outcome);
    writer.U8(result.resource_exhausted ? 1 : 0);
    writer.Str(result.error);
    WriteEngineStats(writer, result.stats);
    writer.F64(result.exec_seconds);
    writer.U8(result.output.produced ? 1 : 0);
    // The encoded result video rides as a muxed VRMP container — the same
    // byte-exact round trip the on-disk format already guarantees.
    if (result.output.video.FrameCount() > 0) {
      video::container::Container container;
      container.video = result.output.video;
      std::vector<uint8_t> muxed = video::container::Mux(container);
      writer.Str(std::string(muxed.begin(), muxed.end()));
    } else {
      writer.Str(std::string());
    }
    WriteDetections(writer, result.output.detections);
    writer.Str(result.output.written_path);
  }
  return writer.Take();
}

StatusOr<std::vector<InstanceResult>> DecodeExecuteResponse(
    const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  uint32_t count = cursor.U32();
  std::vector<InstanceResult> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count && cursor.ok(); ++i) {
    InstanceResult result;
    result.index = cursor.I32();
    result.outcome = cursor.U8();
    result.resource_exhausted = cursor.U8() != 0;
    result.error = cursor.Str();
    result.stats = ReadEngineStats(cursor);
    result.exec_seconds = cursor.F64();
    result.output.produced = cursor.U8() != 0;
    std::string muxed_str = cursor.Str();
    if (!cursor.ok()) {
      return Status::DataLoss("malformed execute-range response payload");
    }
    if (!muxed_str.empty()) {
      std::vector<uint8_t> muxed(muxed_str.begin(), muxed_str.end());
      VR_ASSIGN_OR_RETURN(video::container::Container container,
                          video::container::Demux(muxed));
      result.output.video = std::move(container.video);
    }
    result.output.detections = ReadDetections(cursor);
    result.output.written_path = cursor.Str();
    results.push_back(std::move(result));
  }
  if (!cursor.ok() || results.size() != count) {
    return Status::DataLoss("malformed execute-range response payload");
  }
  return results;
}

std::vector<uint8_t> EncodeCacheEntries(
    const std::vector<std::shared_ptr<const queries::SemanticEntry>>& entries) {
  ByteWriter writer;
  writer.U32(static_cast<uint32_t>(entries.size()));
  for (const std::shared_ptr<const queries::SemanticEntry>& entry : entries) {
    writer.U64(entry->key.stream);
    writer.Str(entry->key.model);
    writer.F64(entry->key.threshold);
    writer.I32(entry->range.first);
    writer.I32(entry->range.count);
    writer.I32(entry->width);
    writer.I32(entry->height);
    writer.F64(entry->fps);
    WriteDetections(writer, entry->detections);
  }
  return writer.Take();
}

StatusOr<std::vector<queries::SemanticEntry>> DecodeCacheEntries(
    const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  uint32_t count = cursor.U32();
  std::vector<queries::SemanticEntry> entries;
  for (uint32_t i = 0; i < count && cursor.ok(); ++i) {
    queries::SemanticEntry entry;
    entry.key.stream = cursor.U64();
    entry.key.model = cursor.Str();
    entry.key.threshold = cursor.F64();
    entry.range.first = cursor.I32();
    entry.range.count = cursor.I32();
    entry.width = cursor.I32();
    entry.height = cursor.I32();
    entry.fps = cursor.F64();
    entry.detections = ReadDetections(cursor);
    if (!cursor.ok()) break;
    if (entry.range.count <= 0 ||
        entry.detections.size() != static_cast<size_t>(entry.range.count)) {
      return Status::DataLoss("malformed cache-entries payload");
    }
    entry.RecomputeBytes();
    entries.push_back(std::move(entry));
  }
  if (!cursor.ok() || entries.size() != count) {
    return Status::DataLoss("malformed cache-entries payload");
  }
  return entries;
}

std::vector<uint8_t> EncodeWorkerStats(const WorkerStats& stats) {
  ByteWriter writer;
  WriteEngineStats(writer, stats.engine);
  writer.U64(static_cast<uint64_t>(stats.instances_executed));
  return writer.Take();
}

StatusOr<WorkerStats> DecodeWorkerStats(const std::vector<uint8_t>& bytes) {
  ByteCursor cursor(bytes);
  WorkerStats stats;
  stats.engine = ReadEngineStats(cursor);
  stats.instances_executed = static_cast<int64_t>(cursor.U64());
  if (!cursor.ok()) return Status::DataLoss("malformed worker stats payload");
  return stats;
}

}  // namespace visualroad::dist
