#ifndef VISUALROAD_DIST_COORDINATOR_H_
#define VISUALROAD_DIST_COORDINATOR_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "dist/protocol.h"
#include "dist/rpc.h"
#include "dist/worker.h"
#include "simulation/generator.h"
#include "storage/sharded_store.h"
#include "systems/vdbms.h"

namespace visualroad::dist {

/// Configuration for a coordinator and the worker fleet it supervises.
struct CoordinatorOptions {
  /// Worker processes to spawn.
  int workers = 2;
  /// Worker executable; empty selects DefaultWorkerBinary().
  std::string worker_binary;
  /// Directory for the pid-qualified worker sockets; empty selects $TMPDIR
  /// (or /tmp). Paths are "<dir>/vr-worker-<coordinator pid>-<index>.sock",
  /// so concurrent test processes never collide on a socket file.
  std::string socket_dir;
  /// The execution environment every worker reconstructs.
  WorkerSetup setup;
  /// Locality hints: the store holding the ingested inputs and the dataset
  /// mapping instances to camera streams. Both optional (and borrowed);
  /// without them partitioning falls back to round-robin by input index.
  /// When `setup.store_root` names the same store, workers also *stage* from
  /// it: they attach read-only and load the corpus instead of regenerating.
  const storage::ShardedStore* store = nullptr;
  const sim::Dataset* dataset = nullptr;
  /// Coordinator-side semantic cache whose ready entries pre-seed every
  /// worker's cache at the start of each batch (kCacheImport), so results
  /// materialized locally — or in a previous fleet — warm the workers.
  /// Borrowed, optional; null disables pre-seeding.
  queries::SemanticCache* semantic_cache = nullptr;
  /// Respawn workers lost in an earlier batch at the start of the next one,
  /// warming each replacement's semantic cache from a surviving donor
  /// (kCacheExport -> kCacheImport). Best-effort: a failed respawn leaves
  /// the slot lost.
  bool heal_workers = true;
  /// Optional fault source driving the rpc_send / worker_crash sites.
  /// Borrowed; must outlive the coordinator.
  fault::FaultInjector* faults = nullptr;
  /// Retry budget for RPC dispatch (the rpc_send site).
  fault::RetryOptions rpc_retry;
  /// How long to wait for a freshly spawned worker's socket and handshake.
  std::chrono::milliseconds connect_timeout{10000};
  /// Straggler detector: per-call response deadline, shipped in the frame so
  /// the worker refuses expired work. 0 disables the detector (calls block),
  /// which is the right default when a chunk legitimately takes a while.
  std::chrono::milliseconds call_timeout{0};
  /// Instances per dispatch chunk; 0 sizes chunks so each worker sees about
  /// two, which keeps the re-dispatch unit small without drowning the
  /// protocol in round trips.
  int chunk_size = 0;
};

/// The merged outcome of one batch instance, mirroring the driver's
/// three-way success/unsupported/failed split plus distributed provenance.
struct DistInstanceOutcome {
  enum State : uint8_t { kSucceeded = 0, kUnsupported = 1, kFailed = 2 };
  State state = kFailed;
  bool resource_exhausted = false;
  std::string error;
  systems::EngineStats stats;
  /// Worker-measured execution seconds (excludes queueing and transport).
  double exec_seconds = 0.0;
  /// Index of the worker that produced the accepted result.
  int worker = -1;
  systems::QueryOutput output;
};

/// Dispatch accounting for one ExecuteBatch call.
struct DistBatchStats {
  int64_t chunks_dispatched = 0;
  /// Chunks re-enqueued after a lost worker or failed dispatch.
  int64_t chunks_redispatched = 0;
  /// Re-dispatches triggered by the straggler detector specifically.
  int64_t straggler_redispatches = 0;
  /// RPC attempts beyond the first (rpc_send retries).
  int64_t rpc_retries = 0;
  /// Workers that died (or were declared dead) during the batch.
  int64_t workers_lost = 0;
  /// Replacement workers respawned (and set up) for slots lost in earlier
  /// batches, before this batch dispatched.
  int64_t workers_respawned = 0;
  /// Semantic-cache entries / encoded bytes shipped to workers this batch
  /// (pre-seeding plus replacement warm-starts).
  int64_t cache_entries_shipped = 0;
  int64_t cache_bytes_shipped = 0;
  /// Peak number of chunks simultaneously dispatched to workers.
  int64_t in_flight_peak = 0;
  /// Sum of worker-measured per-instance execution seconds: the work the
  /// cluster actually did, which the distributed bench turns into makespan.
  double worker_busy_seconds = 0.0;
};

/// Owns a fleet of worker processes and runs query batches across them:
/// partitions a batch by ShardedStore data locality, ships chunks over the
/// RPC layer, re-dispatches stragglers and dead workers' chunks, and merges
/// per-instance results back into batch order. Results are byte-identical
/// to single-process execution because workers regenerate the same dataset
/// and run the same engine (DESIGN.md Section 15).
///
/// Not thread-safe: one batch at a time (internally each worker link gets
/// its own dispatch thread).
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Spawns the fleet, handshakes every worker, and runs Setup on all of
  /// them in parallel (each worker stages its dataset from the shared store
  /// when `setup.store_root` is set, else regenerates it, and builds its
  /// engine). Blocking; a failure tears the fleet back down.
  Status Start();

  /// Executes `batch` across the fleet. Returns one outcome per instance in
  /// batch order. Per-instance failures are reported in the outcome, not as
  /// an overall error; the call itself fails only when work cannot complete
  /// at all (every worker lost with instances still pending).
  StatusOr<std::vector<DistInstanceOutcome>> ExecuteBatch(
      const std::vector<queries::QueryInstance>& batch,
      systems::OutputMode mode, const std::string& output_dir,
      DistBatchStats* stats = nullptr);

  /// Graceful teardown: Shutdown RPC to every live worker, then reap.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Workers currently believed alive.
  int live_workers() const;

  const CoordinatorOptions& options() const { return options_; }

 private:
  struct Slot {
    WorkerProcess process;
    std::unique_ptr<RpcClient> client;
    bool lost = false;
  };

  /// Spawns a worker process for slot `index` and connects + handshakes its
  /// client; the caller decides where the slot goes (append vs. replace).
  StatusOr<std::unique_ptr<Slot>> MakeSlot(int index);
  /// Spawns slot `index`'s process and connects + handshakes its client.
  Status SpawnSlot(int index);
  /// Respawns lost slots in place (Setup + warm-start from a surviving
  /// donor's exported cache). Best-effort; called before a batch dispatches.
  void HealFleet(DistBatchStats* stats);
  /// Ships the local semantic cache's ready entries to every live worker.
  /// Best-effort; a worker that fails the import just stays cold.
  void PreSeedCaches(DistBatchStats* stats);
  /// The worker index an instance's input data prefers (ShardedStore block
  /// placement when hints are present, else a deterministic fallback).
  int PreferredWorker(const queries::QueryInstance& instance, int index) const;

  CoordinatorOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  bool started_ = false;
};

namespace internal {
/// `value % modulus` folded to the non-negative residue. C++ `%` keeps the
/// dividend's sign, so a negative (unset) video index must not be used to
/// address a per-worker share directly.
int NonNegativeMod(int value, int modulus);

/// Dispatch eligibility: may worker `worker` take a chunk tagged to avoid
/// `avoid` (the worker a straggler re-dispatch is fleeing) when
/// `other_live_workers` other workers are still alive? Self-steal is allowed
/// only as a last resort — otherwise the re-dispatch would land on the very
/// worker that is still busy executing the old request.
bool MayTakeChunk(int avoid, int worker, int other_live_workers);
}  // namespace internal

}  // namespace visualroad::dist

#endif  // VISUALROAD_DIST_COORDINATOR_H_
