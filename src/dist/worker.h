#ifndef VISUALROAD_DIST_WORKER_H_
#define VISUALROAD_DIST_WORKER_H_

#include <functional>
#include <memory>
#include <string>

#include "dist/protocol.h"
#include "dist/rpc.h"
#include "simulation/generator.h"
#include "systems/vdbms.h"

namespace visualroad::storage {
class ShardedStore;
}  // namespace visualroad::storage

namespace visualroad::dist {

/// Builds the dataset a WorkerSetup describes. Injected rather than called
/// directly so the dist library does not depend on the driver library (the
/// worker binary, which links the driver, supplies PrepareDataset).
using DatasetFactory = std::function<StatusOr<sim::Dataset>(
    const sim::CityConfig&, const sim::GeneratorOptions&)>;

/// Loads a staged dataset out of a shared store (the coordinator saved it
/// there before spawning the fleet). Injected for the same layering reason
/// as DatasetFactory: the loader lives in the driver library
/// (LoadDatasetSharded), which dist must not link.
using DatasetLoader =
    std::function<StatusOr<sim::Dataset>(const storage::ShardedStore&)>;

/// Resolves a Vdbms::name() string (or its lowercase CLI alias) to a
/// constructed engine; unknown names are InvalidArgument.
StatusOr<std::unique_ptr<systems::Vdbms>> MakeEngineByName(
    const std::string& name, const systems::EngineOptions& options);

/// Configuration for one worker server process.
struct WorkerServerOptions {
  /// Unix-domain socket to listen on.
  std::string socket_path;
  /// Dataset construction hook (required); the regeneration fallback when a
  /// Setup ships no store root.
  DatasetFactory dataset_factory;
  /// Staged-dataset hook. Required to serve a Setup whose `store_root` is
  /// set — a staged Setup arriving at a worker without a loader is refused
  /// with FailedPrecondition rather than silently regenerated.
  DatasetLoader dataset_loader;
  /// Exit the serve loop when the control connection closes without a
  /// Shutdown RPC (the coordinator died). Workers spawned by a coordinator
  /// keep this on; the reconnect tests turn it off so a worker survives a
  /// dropped connection and serves the next accept.
  bool exit_on_disconnect = false;
};

/// Runs the worker serve loop: listen, accept, handshake, serve RPCs until
/// a Shutdown request (or, with exit_on_disconnect, a dropped connection).
/// Blocking; the worker binary's whole main is this call. Engine and caches
/// are constructed at Setup time and live for the server's lifetime, so a
/// reconnecting coordinator finds the worker warm.
Status RunWorkerServer(const WorkerServerOptions& options);

/// The worker executable to spawn: $VR_WORKER_BINARY when set, else the
/// build-time path of the vr_worker target.
std::string DefaultWorkerBinary();

/// A supervised worker child process. Spawned via fork/exec; the child asks
/// the kernel for SIGKILL on parent death (PR_SET_PDEATHSIG), so workers
/// never outlive a killed coordinator or test runner. The handle reaps the
/// child on destruction — no zombies, no orphans after ctest.
class WorkerProcess {
 public:
  WorkerProcess() = default;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  ~WorkerProcess();

  /// Forks and execs `binary --socket socket_path`.
  static StatusOr<WorkerProcess> Spawn(const std::string& binary,
                                       const std::string& socket_path);

  /// SIGKILL + waitpid. Idempotent.
  void Kill();

  /// True while the child has neither exited nor been reaped.
  bool Alive();

  int pid() const { return pid_; }
  const std::string& socket_path() const { return socket_path_; }

 private:
  int pid_ = -1;  // -1 = empty/reaped.
  std::string socket_path_;
};

}  // namespace visualroad::dist

#endif  // VISUALROAD_DIST_WORKER_H_
