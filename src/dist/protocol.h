#ifndef VISUALROAD_DIST_PROTOCOL_H_
#define VISUALROAD_DIST_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "queries/params.h"
#include "queries/semantic_cache.h"
#include "simulation/city.h"
#include "systems/vdbms.h"
#include "video/codec/codec.h"
#include "vision/miniyolo.h"

namespace visualroad::dist {

/// Everything a worker needs to reconstruct the coordinator's execution
/// environment. Dataset generation is deterministic in (CityConfig, codec
/// config), so shipping the configuration instead of the video corpus keeps
/// Setup frames small and guarantees the worker's inputs are byte-identical
/// to the coordinator's.
struct WorkerSetup {
  sim::CityConfig config;
  /// Codec settings the dataset was generated with.
  video::codec::EncoderConfig codec;
  /// Engine to host, by Vdbms::name() ("BatchEngine", "PipelineEngine",
  /// "CascadeEngine"; the lowercase CLI aliases also resolve).
  std::string engine = "PipelineEngine";
  /// Scalar engine configuration (pointer members — vss, caches — stay
  /// local to each process; the worker hosts its own GOP and semantic
  /// caches, which are byte-identical by contract).
  systems::EngineOptions engine_options;
  /// Reference detector configuration; every field rides the wire because
  /// detection output feeds byte-identity.
  vision::DetectorOptions detector;
  /// Host a worker-local semantic result cache.
  bool semantic_cache = true;
  /// Storage staging: when non-empty the worker attaches read-only to the
  /// ShardedStore rooted here (the coordinator's staged dataset + VSS
  /// catalog) and loads its corpus from the store instead of regenerating
  /// pixels. The store geometry fields mirror the coordinator's
  /// StoreOptions so block placement and manifests agree across processes.
  std::string store_root;
  int store_nodes = 4;
  int store_replication = 2;
  int64_t store_block_size = int64_t{1} << 20;
  /// With staging on, also attach the worker engine to the store's VSS
  /// catalog (EngineOptions::vss) so input reads are storage-backed.
  bool attach_vss = true;
};

std::vector<uint8_t> EncodeWorkerSetup(const WorkerSetup& setup);
StatusOr<WorkerSetup> DecodeWorkerSetup(const std::vector<uint8_t>& bytes);

/// One query instance tagged with its index in the coordinator's batch, so
/// results merge back into batch order regardless of which worker ran them.
struct RangeItem {
  int index = 0;
  queries::QueryInstance instance;
};

/// An ExecuteRange request: a sub-range of the batch plus the output
/// contract the coordinator's driver was given.
struct ExecuteRangeRequest {
  systems::OutputMode mode = systems::OutputMode::kWrite;
  std::string output_dir;
  std::vector<RangeItem> items;
};

std::vector<uint8_t> EncodeExecuteRequest(const ExecuteRangeRequest& request);
StatusOr<ExecuteRangeRequest> DecodeExecuteRequest(
    const std::vector<uint8_t>& bytes);

/// Per-instance outcome shipped back from a worker. `outcome` mirrors the
/// driver's three-way split.
struct InstanceResult {
  int index = 0;
  enum Outcome : uint8_t { kSucceeded = 0, kUnsupported = 1, kFailed = 2 };
  uint8_t outcome = kSucceeded;
  bool resource_exhausted = false;
  std::string error;
  systems::EngineStats stats;
  /// Worker-measured execution seconds for this instance; feeds the
  /// distributed bench's cluster-makespan accounting.
  double exec_seconds = 0.0;
  systems::QueryOutput output;
};

std::vector<uint8_t> EncodeExecuteResponse(
    const std::vector<InstanceResult>& results);
StatusOr<std::vector<InstanceResult>> DecodeExecuteResponse(
    const std::vector<uint8_t>& bytes);

/// Stats RPC response: cumulative engine counters plus instances executed.
struct WorkerStats {
  systems::EngineStats engine;
  int64_t instances_executed = 0;
};

std::vector<uint8_t> EncodeWorkerStats(const WorkerStats& stats);
StatusOr<WorkerStats> DecodeWorkerStats(const std::vector<uint8_t>& bytes);

/// Semantic-cache shipping payload (kCacheExport response / kCacheImport
/// request): a flat list of ready entries. Each entry reuses the cache's
/// persisted layout — key, range, geometry, then per-frame detections — so
/// the wire and on-store representations cannot drift apart independently.
std::vector<uint8_t> EncodeCacheEntries(
    const std::vector<std::shared_ptr<const queries::SemanticEntry>>& entries);
StatusOr<std::vector<queries::SemanticEntry>> DecodeCacheEntries(
    const std::vector<uint8_t>& bytes);

}  // namespace visualroad::dist

#endif  // VISUALROAD_DIST_PROTOCOL_H_
