#include "dist/coordinator.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "storage/vss.h"

namespace visualroad::dist {

namespace {

struct DistMetrics {
  metrics::Counter& workers_spawned;
  metrics::Counter& workers_lost;
  metrics::Gauge& workers_live;
  metrics::Counter& chunks_dispatched;
  metrics::Counter& chunks_redispatched;
  metrics::Counter& straggler_redispatches;
  metrics::Counter& instances_executed;
  metrics::Counter& batches;
  metrics::Counter& workers_respawned;
  metrics::Counter& cache_shipped_entries;
  metrics::Counter& cache_shipped_bytes;

  static DistMetrics& Get() {
    static DistMetrics* instance = [] {
      auto& registry = metrics::MetricsRegistry::Global();
      return new DistMetrics{
          registry.GetCounter("vr_dist_workers_spawned_total",
                              "Worker processes spawned by coordinators"),
          registry.GetCounter("vr_dist_workers_lost_total",
                              "Workers that died or were declared dead"),
          registry.GetGauge("vr_dist_workers_live",
                            "Worker processes currently alive"),
          registry.GetCounter("vr_dist_chunks_dispatched_total",
                              "Work chunks shipped to workers"),
          registry.GetCounter(
              "vr_dist_chunks_redispatched_total",
              "Chunks re-enqueued after a lost worker or failed dispatch"),
          registry.GetCounter(
              "vr_dist_straggler_redispatches_total",
              "Re-dispatches triggered by the straggler detector"),
          registry.GetCounter("vr_dist_instances_executed_total",
                              "Query instances completed via the cluster"),
          registry.GetCounter("vr_dist_batches_total",
                              "Distributed query batches executed"),
          registry.GetCounter(
              "vr_dist_workers_respawned_total",
              "Replacement workers respawned for slots lost in earlier "
              "batches"),
          registry.GetCounter(
              "vr_dist_cache_shipped_entries_total",
              "Semantic-cache entries shipped to workers (pre-seeding and "
              "replacement warm-starts)"),
          registry.GetCounter(
              "vr_dist_cache_shipped_bytes_total",
              "Encoded bytes of semantic-cache entries shipped to workers"),
      };
    }();
    return *instance;
  }
};

std::string DefaultSocketDir() {
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

/// One dispatch unit: a sub-range of the batch with a preferred worker.
struct Chunk {
  int affinity = 0;
  /// Straggler re-dispatches so far; past a small cap the chunk runs with a
  /// blocking call, so a uniformly slow fleet can never livelock on
  /// mutual re-dispatch.
  int straggles = 0;
  /// Worker a straggler re-dispatch must land away from: the one still busy
  /// executing the timed-out request. -1 = no restriction. Honoured only
  /// while another worker is alive (see internal::MayTakeChunk).
  int avoid = -1;
  std::vector<RangeItem> items;
};

/// Shared state of one ExecuteBatch call, guarded by `mutex`.
struct BatchState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Chunk> queue;
  int in_flight = 0;
  int remaining = 0;
  std::vector<char> done;
  std::vector<DistInstanceOutcome> results;
  DistBatchStats stats;
};

constexpr int kMaxStraggles = 2;

/// Leading entry count of an EncodeCacheEntries payload (u32 LE), for
/// shipping metrics without a full decode.
int64_t CacheEntryCount(const std::vector<uint8_t>& payload) {
  if (payload.size() < 4) return 0;
  return static_cast<int64_t>(payload[0]) |
         (static_cast<int64_t>(payload[1]) << 8) |
         (static_cast<int64_t>(payload[2]) << 16) |
         (static_cast<int64_t>(payload[3]) << 24);
}

}  // namespace

namespace internal {

int NonNegativeMod(int value, int modulus) {
  if (modulus <= 0) return 0;
  int residue = value % modulus;
  return residue < 0 ? residue + modulus : residue;
}

bool MayTakeChunk(int avoid, int worker, int other_live_workers) {
  return avoid != worker || other_live_workers == 0;
}

}  // namespace internal

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {}

Coordinator::~Coordinator() { Shutdown(); }

StatusOr<std::unique_ptr<Coordinator::Slot>> Coordinator::MakeSlot(int index) {
  std::string binary = options_.worker_binary.empty() ? DefaultWorkerBinary()
                                                      : options_.worker_binary;
  std::string dir =
      options_.socket_dir.empty() ? DefaultSocketDir() : options_.socket_dir;
  // Pid plus a process-wide sequence number: concurrent test processes
  // cannot collide (pid), and neither can two coordinators in one process
  // (sequence).
  static std::atomic<int> socket_seq{0};
  std::string path = dir + "/vr-worker-" + std::to_string(::getpid()) + "-" +
                     std::to_string(socket_seq.fetch_add(1)) + "-" +
                     std::to_string(index) + ".sock";
  auto slot = std::make_unique<Slot>();
  VR_ASSIGN_OR_RETURN(slot->process, WorkerProcess::Spawn(binary, path));
  VR_ASSIGN_OR_RETURN(
      RpcConnection connection,
      RpcConnection::ConnectUnix(path, options_.connect_timeout));
  slot->client = std::make_unique<RpcClient>(std::move(connection));
  VR_RETURN_IF_ERROR(slot->client->Handshake(options_.connect_timeout));
  return slot;
}

Status Coordinator::SpawnSlot(int index) {
  VR_ASSIGN_OR_RETURN(std::unique_ptr<Slot> slot, MakeSlot(index));
  slots_.push_back(std::move(slot));
  return Status::Ok();
}

Status Coordinator::Start() {
  if (started_) {
    return Status::FailedPrecondition("coordinator already started");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("coordinator needs at least one worker");
  }
  trace::Span span("dist:setup");
  for (int i = 0; i < options_.workers; ++i) {
    Status spawned = SpawnSlot(i);
    if (!spawned.ok()) {
      Shutdown();
      return spawned;
    }
  }
  DistMetrics::Get().workers_spawned.Increment(options_.workers);
  DistMetrics::Get().workers_live.Set(options_.workers);

  // Setup in parallel: every worker builds its dataset — staged from the
  // shared store when setup.store_root is set, regenerated otherwise — and
  // its engine. Regeneration dominates startup, so serialising it would
  // cost workers×; staging makes the whole phase cheap.
  std::vector<uint8_t> payload = EncodeWorkerSetup(options_.setup);
  std::vector<Status> outcomes(slots_.size(), Status::Ok());
  std::vector<std::thread> threads;
  threads.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    threads.emplace_back([this, &payload, &outcomes, i] {
      StatusOr<std::vector<uint8_t>> response = slots_[i]->client->Call(
          MethodId::kSetup, payload, std::chrono::milliseconds(0));
      if (!response.ok()) outcomes[i] = response.status();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Status& outcome : outcomes) {
    if (!outcome.ok()) {
      Shutdown();
      return outcome;
    }
  }
  started_ = true;
  return Status::Ok();
}

void Coordinator::Shutdown() {
  for (std::unique_ptr<Slot>& slot : slots_) {
    if (slot->client != nullptr && slot->client->open() && !slot->lost) {
      // Best effort: a worker that already died just fails the call.
      StatusOr<std::vector<uint8_t>> ack = slot->client->Call(
          MethodId::kShutdown, {}, std::chrono::milliseconds(500));
      (void)ack;
    }
    slot->process.Kill();
  }
  if (!slots_.empty()) DistMetrics::Get().workers_live.Set(0);
  slots_.clear();
  started_ = false;
}

int Coordinator::live_workers() const {
  int live = 0;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    if (!slot->lost && slot->client != nullptr && slot->client->open()) ++live;
  }
  return live;
}

int Coordinator::PreferredWorker(const queries::QueryInstance& instance,
                                 int index) const {
  int workers = static_cast<int>(slots_.size());
  if (workers <= 0) return 0;
  switch (instance.id) {
    case queries::QueryId::kQ8:
      // Q8 scans every traffic stream; no single stream to be near.
      return internal::NonNegativeMod(index, workers);
    case queries::QueryId::kQ9:
    case queries::QueryId::kQ10:
      return internal::NonNegativeMod(instance.pano_group, workers);
    default:
      break;
  }
  if (options_.store != nullptr && options_.dataset != nullptr) {
    std::vector<const sim::VideoAsset*> traffic =
        options_.dataset->TrafficAssets();
    if (instance.video_index >= 0 &&
        instance.video_index < static_cast<int>(traffic.size())) {
      int camera_id = traffic[instance.video_index]->camera.camera_id;
      std::vector<int64_t> bytes = options_.store->NodeBytesForPrefix(
          "vss/" + storage::CameraStreamName(camera_id) + "/");
      int best = -1;
      int64_t best_bytes = 0;
      for (size_t node = 0; node < bytes.size(); ++node) {
        if (bytes[node] > best_bytes) {
          best_bytes = bytes[node];
          best = static_cast<int>(node);
        }
      }
      // The stream's dominant datanode, folded onto the fleet: workers
      // stand in for datanodes, so shards of one node land on one worker.
      if (best >= 0) return internal::NonNegativeMod(best, workers);
    }
  }
  // The fold must stay non-negative even for an unset (negative) video
  // index — the result addresses a per-worker share vector directly.
  return internal::NonNegativeMod(instance.video_index, workers);
}

void Coordinator::HealFleet(DistBatchStats* stats) {
  DistMetrics& metrics = DistMetrics::Get();
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]->lost) continue;
    StatusOr<std::unique_ptr<Slot>> replacement =
        MakeSlot(static_cast<int>(i));
    if (!replacement.ok()) continue;  // Best effort; the slot stays lost.
    std::vector<uint8_t> setup_payload = EncodeWorkerSetup(options_.setup);
    StatusOr<std::vector<uint8_t>> ack = (*replacement)->client->Call(
        MethodId::kSetup, setup_payload, std::chrono::milliseconds(0));
    if (!ack.ok()) continue;  // Replacement dies with its handle.
    slots_[i] = std::move(*replacement);
    ++stats->workers_respawned;
    metrics.workers_spawned.Increment();
    metrics.workers_respawned.Increment();
    metrics.workers_live.Set(live_workers());
    // Warm start: copy one surviving worker's semantic cache into the
    // replacement. Export and import share the wire encoding, so the donor's
    // payload ships verbatim.
    trace::Span span("dist:cache_ship");
    for (size_t donor = 0; donor < slots_.size(); ++donor) {
      if (donor == i || slots_[donor]->lost) continue;
      StatusOr<std::vector<uint8_t>> exported = slots_[donor]->client->Call(
          MethodId::kCacheExport, {}, std::chrono::milliseconds(0));
      if (!exported.ok()) continue;  // Try the next donor.
      int64_t entries = CacheEntryCount(*exported);
      if (entries > 0) {
        StatusOr<std::vector<uint8_t>> imported = slots_[i]->client->Call(
            MethodId::kCacheImport, *exported, std::chrono::milliseconds(0));
        if (imported.ok()) {
          stats->cache_entries_shipped += entries;
          stats->cache_bytes_shipped +=
              static_cast<int64_t>(exported->size());
          metrics.cache_shipped_entries.Increment(
              static_cast<double>(entries));
          metrics.cache_shipped_bytes.Increment(
              static_cast<double>(exported->size()));
        }
      }
      break;
    }
  }
}

void Coordinator::PreSeedCaches(DistBatchStats* stats) {
  if (options_.semantic_cache == nullptr) return;
  std::vector<std::shared_ptr<const queries::SemanticEntry>> entries =
      options_.semantic_cache->Snapshot();
  if (entries.empty()) return;
  trace::Span span("dist:cache_ship");
  std::vector<uint8_t> payload = EncodeCacheEntries(entries);
  DistMetrics& metrics = DistMetrics::Get();
  for (std::unique_ptr<Slot>& slot : slots_) {
    if (slot->lost || slot->client == nullptr || !slot->client->open()) {
      continue;
    }
    StatusOr<std::vector<uint8_t>> ack = slot->client->Call(
        MethodId::kCacheImport, payload, std::chrono::milliseconds(0));
    if (!ack.ok()) continue;  // Best effort: a cold worker is still correct.
    stats->cache_entries_shipped += static_cast<int64_t>(entries.size());
    stats->cache_bytes_shipped += static_cast<int64_t>(payload.size());
    metrics.cache_shipped_entries.Increment(
        static_cast<double>(entries.size()));
    metrics.cache_shipped_bytes.Increment(static_cast<double>(payload.size()));
  }
}

StatusOr<std::vector<DistInstanceOutcome>> Coordinator::ExecuteBatch(
    const std::vector<queries::QueryInstance>& batch, systems::OutputMode mode,
    const std::string& output_dir, DistBatchStats* stats_out) {
  if (!started_) return Status::FailedPrecondition("coordinator not started");
  trace::Span batch_span("dist:execute_batch");
  DistMetrics& metrics = DistMetrics::Get();
  metrics.batches.Increment();

  BatchState state;
  state.done.assign(batch.size(), 0);
  state.results.resize(batch.size());
  state.remaining = static_cast<int>(batch.size());

  // Fleet maintenance before dispatch: respawn slots lost in earlier
  // batches, then pre-seed every live worker's semantic cache from the
  // coordinator-side cache. Both are single-threaded here (no dispatch
  // threads exist yet), so slot surgery needs no lock.
  if (options_.heal_workers) HealFleet(&state.stats);
  PreSeedCaches(&state.stats);

  {
    // Partition by data locality, then split each worker's share into
    // chunks small enough to re-dispatch cheaply.
    trace::Span span("dist:partition");
    int workers = static_cast<int>(slots_.size());
    size_t chunk_size = static_cast<size_t>(
        options_.chunk_size > 0
            ? options_.chunk_size
            : std::max<int>(1, static_cast<int>(batch.size()) /
                                   std::max(1, workers * 2)));
    std::vector<std::vector<RangeItem>> shares(workers);
    for (size_t i = 0; i < batch.size(); ++i) {
      int preferred = PreferredWorker(batch[i], static_cast<int>(i));
      shares[preferred].push_back(RangeItem{static_cast<int>(i), batch[i]});
    }
    for (int w = 0; w < workers; ++w) {
      for (size_t at = 0; at < shares[w].size(); at += chunk_size) {
        Chunk chunk;
        chunk.affinity = w;
        size_t end = std::min(shares[w].size(), at + chunk_size);
        chunk.items.assign(shares[w].begin() + at, shares[w].begin() + end);
        state.queue.push_back(std::move(chunk));
      }
    }
  }

  // Re-enqueues a chunk under the state lock and wakes every worker thread.
  auto requeue = [&](Chunk chunk, bool straggler) {
    state.queue.push_back(std::move(chunk));
    --state.in_flight;
    ++state.stats.chunks_redispatched;
    metrics.chunks_redispatched.Increment();
    if (straggler) {
      ++state.stats.straggler_redispatches;
      metrics.straggler_redispatches.Increment();
    }
    state.cv.notify_all();
  };

  // Declares worker `w` dead: its chunk goes back on the queue for the
  // survivors to steal. Caller must NOT hold the state lock.
  auto fail_slot = [&](int w, Chunk chunk) {
    std::lock_guard<std::mutex> lock(state.mutex);
    slots_[w]->lost = true;
    slots_[w]->client->Close();
    slots_[w]->process.Kill();
    ++state.stats.workers_lost;
    metrics.workers_lost.Increment();
    metrics.workers_live.Set(live_workers());
    requeue(std::move(chunk), /*straggler=*/false);
  };

  auto worker_loop = [&](int w) {
    int64_t thread_retries_base = fault::ThreadRetries();
    // Folds this thread's rpc_send retry count into the batch stats; runs
    // on every exit path.
    auto account_retries = [&] {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.stats.rpc_retries += fault::ThreadRetries() - thread_retries_base;
    };
    for (;;) {
      Chunk chunk;
      int live = 0;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        // Eligibility honours straggler avoid-tags: a re-dispatched chunk
        // must land on a different live worker, not boomerang back to the
        // one still busy on the timed-out request. Recomputed inside the
        // wait because `lost` flips while we sleep.
        auto other_live = [&] {
          int n = 0;
          for (size_t i = 0; i < slots_.size(); ++i) {
            if (static_cast<int>(i) != w && !slots_[i]->lost) ++n;
          }
          return n;
        };
        auto eligible = [&](const Chunk& c) {
          return internal::MayTakeChunk(c.avoid, w, other_live());
        };
        state.cv.wait(lock, [&] {
          return state.remaining == 0 ||
                 std::any_of(state.queue.begin(), state.queue.end(), eligible);
        });
        if (state.remaining == 0) break;
        // Prefer a chunk whose inputs live near this worker; steal
        // otherwise (an idle worker beats a local one that is busy).
        auto it = std::find_if(
            state.queue.begin(), state.queue.end(),
            [&](const Chunk& c) { return c.affinity == w && eligible(c); });
        if (it == state.queue.end()) {
          it = std::find_if(state.queue.begin(), state.queue.end(), eligible);
        }
        chunk = std::move(*it);
        state.queue.erase(it);
        ++state.in_flight;
        state.stats.in_flight_peak = std::max<int64_t>(
            state.stats.in_flight_peak, state.in_flight);
        ++state.stats.chunks_dispatched;
        metrics.chunks_dispatched.Increment();
        for (const std::unique_ptr<Slot>& slot : slots_) {
          if (!slot->lost) ++live;
        }
      }

      // Injected worker crash: this worker dies before the dispatch lands.
      // The guard re-checks survivors under the lock so concurrent crashes
      // can never take the last live worker.
      if (options_.faults != nullptr &&
          options_.faults->ShouldInject(fault::Site::kWorkerCrash)) {
        bool died = false;
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          int live_others = 0;
          for (size_t i = 0; i < slots_.size(); ++i) {
            if (static_cast<int>(i) != w && !slots_[i]->lost) ++live_others;
          }
          if (live_others > 0) {
            slots_[w]->lost = true;
            slots_[w]->client->Close();
            slots_[w]->process.Kill();
            ++state.stats.workers_lost;
            metrics.workers_lost.Increment();
            metrics.workers_live.Set(live_workers());
            requeue(std::move(chunk), /*straggler=*/false);
            died = true;
          }
        }
        if (died) {
          account_retries();
          return;
        }
      }

      ExecuteRangeRequest request;
      request.mode = mode;
      request.output_dir = output_dir;
      request.items = chunk.items;
      std::vector<uint8_t> payload = EncodeExecuteRequest(request);
      // Straggler detection needs someone else to pick the work up: the
      // last live worker — and a chunk that already straggled past the cap
      // — always get a blocking call.
      std::chrono::milliseconds timeout =
          (live > 1 && chunk.straggles < kMaxStraggles)
              ? options_.call_timeout
              : std::chrono::milliseconds(0);

      std::vector<uint8_t> response_bytes;
      bool straggled = false;
      fault::RetryPolicy policy(fault::Site::kRpcSend, options_.rpc_retry);
      Status sent = policy.Run([&]() -> Status {
        if (options_.faults != nullptr &&
            options_.faults->ShouldInject(fault::Site::kRpcSend)) {
          return Status::IoError("injected rpc send fault");
        }
        trace::Span span("rpc:call");
        StatusOr<std::vector<uint8_t>> response =
            slots_[w]->client->Call(MethodId::kExecuteRange, payload, timeout);
        if (response.ok()) {
          response_bytes = std::move(response).value();
          return Status::Ok();
        }
        if (response.status().code() == StatusCode::kIoError &&
            response.status().message().find("timeout") != std::string::npos) {
          // Straggler: hand the chunk to someone else. Non-retryable so
          // the policy stops here; the connection stays usable because the
          // client discards the late response by correlation id.
          straggled = true;
          return Status::FailedPrecondition("rpc response deadline exceeded");
        }
        return response.status();
      });

      if (straggled) {
        std::lock_guard<std::mutex> lock(state.mutex);
        ++chunk.straggles;
        // This worker is still chewing on the timed-out request; steer the
        // re-dispatch to someone else.
        chunk.avoid = w;
        requeue(std::move(chunk), /*straggler=*/true);
        continue;
      }
      if (!sent.ok()) {
        if (sent.code() == StatusCode::kFailedPrecondition) {
          // The worker refused an already-expired request; it is healthy,
          // the work just needs a fresh deadline.
          std::lock_guard<std::mutex> lock(state.mutex);
          ++chunk.straggles;
          chunk.avoid = w;
          requeue(std::move(chunk), /*straggler=*/true);
          continue;
        }
        // Transport dead after retries: the worker is gone.
        fail_slot(w, std::move(chunk));
        account_retries();
        return;
      }

      StatusOr<std::vector<InstanceResult>> decoded =
          DecodeExecuteResponse(response_bytes);
      if (!decoded.ok()) {
        fail_slot(w, std::move(chunk));
        account_retries();
        return;
      }

      {
        // Merge: first writer wins per instance (a straggler's chunk may
        // complete twice, once per dispatch).
        std::lock_guard<std::mutex> lock(state.mutex);
        for (InstanceResult& result : *decoded) {
          if (result.index < 0 ||
              result.index >= static_cast<int>(state.done.size()) ||
              state.done[result.index]) {
            continue;
          }
          state.done[result.index] = 1;
          --state.remaining;
          DistInstanceOutcome& outcome = state.results[result.index];
          outcome.state =
              static_cast<DistInstanceOutcome::State>(result.outcome);
          outcome.resource_exhausted = result.resource_exhausted;
          outcome.error = std::move(result.error);
          outcome.stats = result.stats;
          outcome.exec_seconds = result.exec_seconds;
          outcome.worker = w;
          outcome.output = std::move(result.output);
          state.stats.worker_busy_seconds += result.exec_seconds;
          metrics.instances_executed.Increment();
        }
        --state.in_flight;
        state.cv.notify_all();
      }
    }
    account_retries();
  };

  std::vector<std::thread> threads;
  threads.reserve(slots_.size());
  for (size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w]->lost) continue;
    threads.emplace_back(worker_loop, static_cast<int>(w));
  }
  for (std::thread& thread : threads) thread.join();

  {
    trace::Span span("dist:merge");
    if (state.remaining > 0) {
      return Status::Internal(
          "distributed batch incomplete: every worker lost with " +
          std::to_string(state.remaining) + " instance(s) pending");
    }
  }
  if (stats_out != nullptr) *stats_out = state.stats;
  return std::move(state.results);
}

}  // namespace visualroad::dist
