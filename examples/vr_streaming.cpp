// VR streaming: the panoramic pipeline — stitch a panoramic rig's four faces
// into a 360-degree equirectangular video (Q9), then prepare it for
// tile-based adaptive streaming (Q10): 3x3 tiles at mixed bitrates plus a
// client-resolution downsample, reporting the bandwidth saved.
//
//   $ ./build/examples/vr_streaming

#include <cstdio>

#include "driver/datasets.h"
#include "queries/reference.h"
#include "video/metrics.h"
#include "vision/tiling.h"

using namespace visualroad;

int main() {
  sim::CityConfig config;
  config.scale_factor = 1;
  config.width = 320;
  config.height = 180;
  config.duration_seconds = 2.0;
  config.fps = 15.0;
  config.seed = 360;

  std::printf("Generating a Visual City with a panoramic rig...\n");
  auto dataset = driver::PrepareDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("  panoramic rigs: %d (4 faces each, 120-degree FOV at"
              " 90-degree spacing)\n\n", dataset->PanoramicGroupCount());

  // --- Q9: stitch. ---
  queries::ReferenceContext context;
  context.dataset = &*dataset;
  auto panorama = queries::StitchQuery(context, /*pano_group=*/0);
  if (!panorama.ok()) {
    std::fprintf(stderr, "stitching failed: %s\n",
                 panorama.status().ToString().c_str());
    return 1;
  }
  std::printf("Q9: stitched %d frames into a %dx%d equirectangular"
              " panorama.\n", panorama->FrameCount(), panorama->Width(),
              panorama->Height());

  // --- Q10: tile-based streaming at two quality levels. ---
  const int64_t high_bitrate = int64_t{1} << 21;  // b_h.
  const int64_t low_bitrate = int64_t{1} << 17;   // b_l.

  // A viewport-driven importance map: the three front-facing tiles get b_h,
  // the rest b_l (a static version of what a head-tracker would drive).
  std::array<int64_t, 9> mixed;
  for (size_t i = 0; i < 9; ++i) {
    mixed[i] = (i % 3 == 1) ? high_bitrate : low_bitrate;
  }

  int tile_w = (panorama->Width() + 2) / 3;
  int tile_h = (panorama->Height() + 2) / 3;

  // Uniform-high reference: what streaming everything at b_h would cost.
  int64_t uniform_bytes = 0;
  auto uniform = vision::TiledReencode(*panorama, tile_w, tile_h, {high_bitrate},
                                       video::codec::Profile::kH264Like,
                                       &uniform_bytes);
  int64_t mixed_bytes = 0;
  std::vector<int64_t> mixed_rates(mixed.begin(), mixed.end());
  auto tiled = vision::TiledReencode(*panorama, tile_w, tile_h, mixed_rates,
                                     video::codec::Profile::kH264Like,
                                     &mixed_bytes);
  if (!uniform.ok() || !tiled.ok()) {
    std::fprintf(stderr, "tiled re-encode failed\n");
    return 1;
  }

  // Client downsample (headset resolution).
  int client_w = config.width, client_h = config.width / 2;
  auto client = queries::TileStreamQuery(*panorama, mixed, client_w, client_h,
                                         video::codec::Profile::kH264Like);
  if (!client.ok()) {
    std::fprintf(stderr, "Q10 failed: %s\n", client.status().ToString().c_str());
    return 1;
  }

  auto psnr = video::MeanPsnr(*panorama, *tiled);
  std::printf("Q10: 3x3 tiles, %d high-quality + %d low-quality.\n", 3, 6);
  std::printf("  uniform-high payload: %8.1f KB\n", uniform_bytes / 1024.0);
  std::printf("  mixed-tier payload:   %8.1f KB  (%.0f%% bandwidth saved)\n",
              mixed_bytes / 1024.0,
              100.0 * (1.0 - static_cast<double>(mixed_bytes) /
                                 static_cast<double>(uniform_bytes)));
  if (psnr.ok()) {
    std::printf("  mixed-tier fidelity:  %.1f dB PSNR vs the full panorama\n",
                *psnr);
  }
  std::printf("  client output: %d frames at %dx%d\n", client->FrameCount(),
              client->Width(), client->Height());
  return 0;
}
