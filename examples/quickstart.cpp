// Quickstart: generate a Visual City dataset, run one benchmark query on a
// VDBMS engine through the Visual City Driver, and validate the result.
//
//   $ ./build/examples/quickstart [seed]
//
// This walks the full public API surface end to end:
//   1. Configure the four benchmark hyperparameters {L, R, t, s}.
//   2. Generate the dataset with the VCG (videos + automatic ground truth).
//   3. Submit a Q1 (spatio-temporal selection) batch through the VCD.
//   4. Read the validation report (PSNR against the reference implementation).
//   5. Export a decoded frame as a PPM image for inspection.

#include <cstdio>
#include <cstdlib>

#include "driver/datasets.h"
#include "driver/report.h"
#include "driver/vcd.h"

using namespace visualroad;

namespace {

/// Writes an RGB image as a binary PPM.
bool WritePpm(const video::RgbImage& image, const char* path) {
  FILE* file = std::fopen(path, "wb");
  if (file == nullptr) return false;
  std::fprintf(file, "P6\n%d %d\n255\n", image.width, image.height);
  std::fwrite(image.data.data(), 1, image.data.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. The benchmark's hyperparameters (Section 3.1 of the paper): scale
  //    factor L, resolution R, duration t, and seed s. Identical values
  //    reproduce the identical dataset on any machine.
  sim::CityConfig config;
  config.scale_factor = 1;       // L: one tile -> 4 traffic + 1 pano camera.
  config.width = 320;            // R.
  config.height = 180;
  config.duration_seconds = 2.0; // t.
  config.fps = 15.0;
  config.seed = seed;            // s.

  std::printf("Generating Visual City (L=%d, %dx%d, %.0fs, seed=%llu)...\n",
              config.scale_factor, config.width, config.height,
              config.duration_seconds,
              static_cast<unsigned long long>(config.seed));

  // 2. Generate the dataset: every camera's video is rendered, encoded with
  //    the VRC codec, muxed into a container, and annotated with exact
  //    ground truth straight from the simulation geometry.
  auto dataset = driver::PrepareDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu videos, %d frames each\n", dataset->assets.size(),
              dataset->assets[0].container.video.FrameCount());

  // 3. Submit a query batch. The VCD samples the 4L template parameters
  //    (Table 3) itself; the engine only executes.
  driver::VcdOptions vcd_options;
  vcd_options.output_dir = "/tmp/visualroad_quickstart";
  driver::VisualCityDriver vcd(*dataset, vcd_options);

  systems::EngineOptions engine_options;
  auto engine = systems::MakePipelineEngine(engine_options);

  auto result = vcd.RunQueryBatch(*engine, queries::QueryId::kQ1);
  if (!result.ok()) {
    std::fprintf(stderr, "query batch failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. The validation report: every output frame compared against the
  //    reference implementation at the 40 dB PSNR threshold.
  std::printf("\n%s\n",
              driver::FormatBenchmarkReport({*result}).c_str());

  // 5. Export the first frame of the first input for a look at the city.
  auto decoded = video::codec::DecodeRange(
      dataset->assets[0].container.video, 0, 1);
  if (decoded.ok() &&
      WritePpm(video::FrameToRgb(decoded->frames[0]),
               "/tmp/visualroad_quickstart_frame.ppm")) {
    std::printf("Wrote /tmp/visualroad_quickstart_frame.ppm\n");
  }
  return 0;
}
