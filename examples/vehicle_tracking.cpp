// Vehicle tracking: the Q8 "find this license plate" application. A vehicle
// is picked from the city's ground truth, its plate is handed to the
// tracking query (which knows nothing but the six characters), and the
// resulting vehicle tracking segments (VTSs) are reported — the pipeline of
// Figure 4 in the paper.
//
//   $ ./build/examples/vehicle_tracking
//
// Demonstrates: detector-proposed plate regions, the ALPR matched filter,
// VTS formation, and entry-time-ordered concatenation.

#include <cstdio>
#include <map>

#include "driver/datasets.h"
#include "queries/reference.h"

using namespace visualroad;

int main() {
  // A denser city raises the chance of multiple sightings of one vehicle.
  sim::CityConfig config;
  config.scale_factor = 2;
  config.width = 320;
  config.height = 180;
  config.duration_seconds = 3.0;
  config.fps = 15.0;
  config.seed = 1023;

  // Generate a city with at least one identifiable plate (a city where no
  // plate is ever readable is possible at tiny scales; retry a few seeds).
  StatusOr<sim::Dataset> dataset = Status::NotFound("not generated");
  std::map<std::string, int> sightings;
  for (int attempt = 0; attempt < 4 && sightings.empty(); ++attempt) {
    config.seed = 1023 + static_cast<uint64_t>(attempt);
    std::printf("Generating Visual City (seed %llu)...\n",
                static_cast<unsigned long long>(config.seed));
    dataset = driver::PrepareDataset(config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    // Pick the most-sighted plate from ground truth — in a real deployment
    // this would be the watchlist entry.
    for (const sim::VideoAsset* asset : dataset->TrafficAssets()) {
      for (const sim::FrameGroundTruth& frame : asset->ground_truth) {
        for (const sim::GroundTruthBox& box : frame.boxes) {
          if (box.plate_visible) ++sightings[box.plate];
        }
      }
    }
  }
  if (sightings.empty()) {
    std::printf("No plate was ever identifiable in these cities; try other"
                " seeds.\n");
    return 0;
  }
  std::string plate;
  int best = 0;
  for (const auto& [candidate, count] : sightings) {
    if (count > best) {
      best = count;
      plate = candidate;
    }
  }
  std::printf("Tracking plate \"%s\" (%d ground-truth sightings).\n\n",
              plate.c_str(), best);

  // Run Q8: every traffic video is scanned with the detector + ALPR matched
  // filter; contiguous hits form VTSs, concatenated by entry time.
  queries::ReferenceContext context;
  context.dataset = &*dataset;
  std::vector<queries::TrackingSegment> segments;
  auto tracking = queries::TrackingQuery(context, plate, &segments);
  if (!tracking.ok()) {
    std::fprintf(stderr, "tracking failed: %s\n",
                 tracking.status().ToString().c_str());
    return 1;
  }

  if (segments.empty()) {
    std::printf("The recogniser never confirmed the plate (it can genuinely"
                " miss:\nocclusion, distance, or fog) - the output video is"
                " empty, which is a\nvalid Q8 result.\n");
    return 0;
  }
  std::printf("%-6s %-10s %-14s %-14s\n", "VTS", "Camera", "Enter (s)",
              "Exit (s)");
  for (size_t i = 0; i < segments.size(); ++i) {
    const queries::TrackingSegment& segment = segments[i];
    std::printf("%-6zu %-10d %-14.2f %-14.2f\n", i + 1, segment.asset_index,
                segment.first_frame / config.fps,
                (segment.last_frame + 1) / config.fps);
  }
  std::printf("\nOutput tracking video: %d frames (%.2f s), the temporal"
              " concatenation of all VTSs.\n",
              tracking->FrameCount(),
              tracking->FrameCount() / config.fps);
  return 0;
}
