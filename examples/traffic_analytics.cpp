// Traffic analytics: the object-detection application the paper's intro
// motivates — run the Q7 composite pipeline (detect -> overlay -> background
// removal) over every traffic camera in a Visual City and produce a simple
// per-camera traffic report.
//
//   $ ./build/examples/traffic_analytics
//
// Demonstrates: running the MiniYolo detector directly, semantic validation
// against automatic ground truth, and the Q7 composition from Table 6.

#include <cstdio>

#include "driver/datasets.h"
#include "driver/validation.h"
#include "queries/reference.h"

using namespace visualroad;

int main() {
  sim::CityConfig config;
  config.scale_factor = 2;  // Two tiles: eight traffic cameras.
  config.width = 240;
  config.height = 136;
  config.duration_seconds = 2.0;
  config.fps = 15.0;
  config.seed = 7;

  std::printf("Generating a two-tile Visual City...\n");
  auto dataset = driver::PrepareDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  vision::MiniYolo detector;
  queries::ReferenceContext context;
  context.dataset = &*dataset;

  std::printf("\n%-8s %-28s %-10s %-12s %-12s %-10s\n", "Camera", "Tile/Weather",
              "Frames", "Vehicles", "Pedestrians", "Valid%%");

  std::vector<const sim::VideoAsset*> traffic = dataset->TrafficAssets();
  for (size_t v = 0; v < traffic.size(); ++v) {
    const sim::VideoAsset& asset = *traffic[v];
    auto decoded = video::codec::Decode(asset.container.video);
    if (!decoded.ok()) continue;

    // Q2(c) for each class; Q7 composes Q2(d) . Q6(a) . Q2(c) — run the
    // detection stage and collect analytics.
    int64_t vehicles = 0, pedestrians = 0;
    std::vector<std::vector<vision::Detection>> all;
    for (int f = 0; f < decoded->FrameCount(); ++f) {
      const sim::FrameGroundTruth& truth = asset.ground_truth[static_cast<size_t>(f)];
      std::vector<vision::Detection> detections =
          detector.Detect(decoded->frames[static_cast<size_t>(f)], truth, f);
      for (const vision::Detection& d : detections) {
        if (d.object_class == sim::ObjectClass::kVehicle) ++vehicles;
        if (d.object_class == sim::ObjectClass::kPedestrian) ++pedestrians;
      }
      all.push_back(std::move(detections));
    }

    // Semantic validation (Section 3.2): are the reported boxes real?
    auto vehicle_validation = driver::SemanticValidate(
        all, asset.ground_truth, sim::ObjectClass::kVehicle);
    double valid_percent =
        vehicle_validation.ok() && vehicle_validation->checked > 0
            ? vehicle_validation->PassRate() * 100.0
            : 100.0;

    char label[40];
    std::snprintf(label, sizeof(label), "tile %d", asset.camera.tile_index);

    std::printf("%-8d %-28s %-10d %-12lld %-12lld %5.1f%%\n",
                asset.camera.camera_id, label, decoded->FrameCount(),
                static_cast<long long>(vehicles),
                static_cast<long long>(pedestrians), valid_percent);
  }

  // Run the full Q7 composite on one camera to show the end-to-end pipeline.
  std::printf("\nRunning the full Q7 pipeline (detect + overlay + background"
              " removal) on camera 0...\n");
  queries::QueryInstance q7;
  q7.id = queries::QueryId::kQ7;
  q7.video_index = 0;
  q7.object_class = sim::ObjectClass::kVehicle;
  q7.q2d_m = 8;
  q7.q2d_epsilon = 0.2;
  auto input = video::codec::Decode(traffic[0]->container.video);
  if (!input.ok()) return 1;
  auto q7_result = queries::RunReference(context, q7, *input);
  if (!q7_result.ok()) {
    std::fprintf(stderr, "Q7 failed: %s\n", q7_result.status().ToString().c_str());
    return 1;
  }
  std::printf("Q7 produced %d frames at %dx%d.\n",
              q7_result->video.FrameCount(), q7_result->video.Width(),
              q7_result->video.Height());
  return 0;
}
